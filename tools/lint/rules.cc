#include "lint/rules.h"

#include <cctype>

#include "lint/include_graph.h"

namespace gnndm_lint {

namespace {

void CheckIncludeGuard(const SourceFile& f) {
  if (!f.is_header) return;
  const std::string guard = ExpectedGuard(f.rel);
  bool has_ifndef = false, has_define = false;
  for (const auto& line : f.lines) {
    if (line.find("#ifndef " + guard) != std::string::npos) has_ifndef = true;
    if (line.find("#define " + guard) != std::string::npos) has_define = true;
  }
  if (!has_ifndef || !has_define) {
    Report(f, 0, "include-guard", "header must use include guard " + guard);
  }
}

// std::thread is allowed only where a worker thread is genuinely owned
// and its shared state is annotated; everything else goes through
// ThreadPool. Tests may spawn raw threads to provoke races.
const std::set<std::string> kThreadAllowlist = {
    "src/common/thread_pool.h", "src/common/thread_pool.cc",
    // hardware_concurrency() only; all shared state is annotated.
    "src/common/parallel_for.cc",
    "src/core/batch_source.h", "src/core/batch_source.cc",
};

void CheckConcurrencyPrimitives(const SourceFile& f,
                                const std::vector<const Token*>& toks) {
  // The wrapper itself, and the lock-order detector that sits beneath it
  // (which must use the raw std::mutex to avoid recursing into its own
  // hooks), are the only legal homes for the raw primitives.
  if (f.rel == "src/common/annotations.h" ||
      f.rel == "src/common/lock_order.h" ||
      f.rel == "src/common/lock_order.cc") {
    return;
  }
  static const char* kLockNames[] = {
      "mutex",       "condition_variable", "lock_guard",
      "unique_lock", "scoped_lock",        "shared_mutex",
      "recursive_mutex", "timed_mutex",    "condition_variable_any",
  };
  const bool thread_allowed =
      !f.InDir("src/") || kThreadAllowlist.count(f.rel) > 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "std")) continue;
    for (const char* name : kLockNames) {
      if (IsStdQualified(toks, i, name)) {
        Report(f, toks[i]->line, "raw-lock",
               "std::" + std::string(name) +
                   " bypasses thread-safety analysis and the lock-order "
                   "graph; use gnndm::Mutex / MutexLock / CondVar from "
                   "common/annotations.h");
      }
    }
    if (!thread_allowed && IsStdQualified(toks, i, "thread")) {
      Report(f, toks[i]->line, "raw-thread",
             "std::thread outside the audited concurrency surfaces; "
             "use ThreadPool or add the file to the lint allowlist "
             "after annotating its shared state");
    }
  }
}

/// Batch production is unified behind the BatchSource plane: src/ code
/// outside src/core/batch_source.{h,cc} must not name the producer-thread
/// implementation (AsyncBatchSource) or the retired AsyncBatchLoader.
void CheckBatchPlane(const SourceFile& f,
                     const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  if (f.rel == "src/core/batch_source.h" ||
      f.rel == "src/core/batch_source.cc") {
    return;
  }
  for (const Token* t : toks) {
    if (IsIdent(t, "AsyncBatchSource") || IsIdent(t, "AsyncBatchLoader")) {
      Report(f, t->line, "batch-plane",
             t->text +
                 " outside src/core/batch_source.{h,cc} fragments the "
                 "batch data plane; go through MakeBatchSource");
    }
  }
}

void CheckAssert(const SourceFile& f, const std::vector<const Token*>& toks) {
  if (!f.is_source || f.InDir("tests/")) return;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (IsIdent(toks[i], "assert") && IsPunct(toks[i + 1], "(")) {
      Report(f, toks[i]->line, "assert-in-cc",
             "assert() in non-test code vanishes under -DNDEBUG without "
             "trace; use GNNDM_DCHECK (debug) or GNNDM_CHECK (always)");
    }
  }
}

void CheckDeserializationValidates(const SourceFile& f,
                                   const std::vector<const Token*>& toks) {
  if (!f.is_source || !f.InDir("src/")) return;
  bool reads_binary = false, has_ifstream = false, has_validate = false;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (IsIdent(toks[i], "binary") && i >= 2 && IsPunct(toks[i - 1], "::") &&
        IsIdent(toks[i - 2], "ios")) {
      reads_binary = true;
    }
    if (toks[i]->kind == TokKind::kIdent &&
        toks[i]->text.find("ifstream") != std::string::npos) {
      has_ifstream = true;
    }
    // Any Validate* call counts (Validate, ValidateLoadedTensor, ...);
    // comments mentioning validation do not — tokens only.
    if (toks[i]->kind == TokKind::kIdent &&
        toks[i]->text.rfind("Validate", 0) == 0) {
      has_validate = true;
    }
  }
  if (reads_binary && has_ifstream && !has_validate) {
    Report(f, 0, "deserialize-validate",
           "binary deserializer must run a Validate() pass over the "
           "decoded structures before returning them");
  }
}

/// True if `line` is `for (` at an indent of at least `min_indent` spaces.
bool IsForAtIndent(const std::string& line, size_t min_indent) {
  size_t p = 0;
  while (p < line.size() && line[p] == ' ') ++p;
  return p >= min_indent && line.compare(p, 5, "for (") == 0;
}

/// Hot-kernel loops in src/tensor and src/nn must go through the
/// ParallelFor work-sharing layer. Heuristic: a function-top-level `for`
/// (exactly 2-space indent in this codebase) containing a nested loop is
/// kernel-shaped. Operates on comment/string-blanked `code` lines.
void CheckRawLoopKernels(const SourceFile& f) {
  if (!f.is_source ||
      (!f.InDir("src/tensor/") && !f.InDir("src/nn/"))) {
    return;
  }
  const std::vector<std::string>& code = f.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].rfind("  for (", 0) != 0 || code[i][2] != 'f') continue;
    long depth = 0;
    bool nested = false;
    for (size_t j = i; j < code.size(); ++j) {
      if (j > i && IsForAtIndent(code[j], 4)) nested = true;
      for (char c : code[j]) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (j > i && depth <= 0) break;
      if (j == i && depth == 0) break;  // braceless one-liner
    }
    if (nested) {
      Report(f, i + 1, "raw-loop-kernel",
             "nested loop in a tensor/nn kernel bypasses ParallelFor "
             "(common/parallel_for.h); parallelize it or mark it "
             "'// serial-ok: <reason>'");
    }
  }
}

/// The pipeline-stage directories must not time work outside the span
/// tracer: a raw WallTimer there produces numbers telemetry (and the
/// EpochStats reconciliation test) cannot see.
void CheckTimerUse(const SourceFile& f,
                   const std::vector<const Token*>& toks) {
  if (!f.is_source ||
      (!f.InDir("src/core/") && !f.InDir("src/transfer/") &&
       !f.InDir("src/sampling/"))) {
    return;
  }
  for (const Token* t : toks) {
    if (IsIdent(t, "WallTimer")) {
      Report(f, t->line, "raw-timer",
             "direct WallTimer in a pipeline-stage directory escapes the "
             "telemetry breakdown; use TRACE_SPAN(\"subsystem.name\") or "
             "mark the line '// timer-ok: <reason>'");
    }
  }
}

/// Determinism rule: iteration over std::unordered_map/unordered_set in
/// src/ — the iteration order is implementation-defined (libstdc++,
/// libc++, and different bucket counts all disagree), so any traversal
/// feeding computation or output is a reproducibility bug waiting for a
/// toolchain bump. Flags (a) range-for statements whose range expression
/// names an unordered container, and (b) explicit .begin()/.end() family
/// calls on one.
void CheckUnorderedIteration(const SourceFile& f,
                             const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  const std::set<std::string> names = UnorderedNames(toks);
  if (names.empty()) return;

  for (size_t i = 0; i < toks.size(); ++i) {
    // (a) for ( ... : <expr naming an unordered var> )
    if (IsIdent(toks[i], "for") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      long depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")") && --depth == 0) {
          close = j;
          break;
        }
        if (depth == 1 && colon == 0 && IsPunct(toks[j], ":")) colon = j;
      }
      if (colon != 0 && close != 0) {
        for (size_t j = colon + 1; j < close; ++j) {
          if (toks[j]->kind == TokKind::kIdent &&
              names.count(toks[j]->text) > 0) {
            Report(f, toks[i]->line, "unordered-iteration",
                   "range-for over unordered container '" + toks[j]->text +
                       "': iteration order is implementation-defined and "
                       "breaks byte-identical output; sort the keys or "
                       "keep a parallel insertion-order vector");
            break;
          }
        }
      }
    }
    // (b) <unordered var> [...].begin() / .cbegin() — the start of an
    // explicit iterator traversal. A bare .end() is not flagged: it is
    // almost always the `find() != end()` membership idiom. A member
    // access `other.name.begin()` is skipped too — the collected names
    // are file-local declarations, not members of foreign structs.
    if (toks[i]->kind == TokKind::kIdent && names.count(toks[i]->text) > 0 &&
        !(i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")))) {
      size_t j = i + 1;
      while (j + 1 < toks.size() && IsPunct(toks[j], "[")) {
        long depth = 0;
        for (; j < toks.size(); ++j) {
          if (IsPunct(toks[j], "[")) ++depth;
          if (IsPunct(toks[j], "]") && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      if (j + 1 < toks.size() && IsPunct(toks[j], ".") &&
          (IsIdent(toks[j + 1], "begin") ||
           IsIdent(toks[j + 1], "cbegin"))) {
        Report(f, toks[i]->line, "unordered-iteration",
               "iterator traversal of unordered container '" +
                   toks[i]->text +
                   "' is order-unstable; sort the keys first");
      }
    }
  }
}

/// Determinism rule: every random draw flows from a seeded gnndm::Rng.
/// rand()/srand()/clock()/time() and std::random_device are either
/// schedule-, wall-clock-, or entropy-dependent; a single call anywhere
/// on a training path silently breaks run-to-run reproducibility.
void CheckRawRng(const SourceFile& f, const std::vector<const Token*>& toks) {
  if (!f.InDir("src/") && !f.InDir("tools/") && !f.InDir("bench/")) return;
  if (f.rel == "src/common/rng.h" || f.rel == "src/common/rng.cc") return;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token* t = toks[i];
    if (t->kind != TokKind::kIdent) continue;
    if (IsIdent(t, "random_device")) {
      Report(f, t->line, "raw-rng",
             "std::random_device draws nondeterministic entropy; seed a "
             "gnndm::Rng (common/rng.h) instead");
      continue;
    }
    const bool call_like =
        i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
    if (!call_like) continue;
    const bool member = i > 0 && (IsPunct(toks[i - 1], ".") ||
                                  IsPunct(toks[i - 1], "->"));
    if (member) continue;  // foo.time() is not ::time()
    if (IsIdent(t, "rand") || IsIdent(t, "srand") || IsIdent(t, "time") ||
        IsIdent(t, "clock")) {
      Report(f, t->line, "raw-rng",
             t->text +
                 "() is wall-clock/entropy-dependent; all randomness and "
                 "timing must flow from gnndm::Rng seeds or the telemetry "
                 "clocks");
    }
  }
}

/// Isolation rule: raw SIMD intrinsics, vector types, and vector-ISA
/// feature tests may appear only in the per-tier kernel TUs
/// (src/tensor/simd*) and the cpuid probe (src/common/cpu_features.*).
/// Everything else calls through the dispatched SimdKernels table, so
/// the fixed-lane determinism contract has exactly one audit surface and
/// business logic cannot grow silent per-ISA forks.
void CheckSimdIsolation(const SourceFile& f,
                        const std::vector<const Token*>& toks) {
  if (!f.InDir("src/") && !f.InDir("tools/") && !f.InDir("bench/") &&
      !f.InDir("tests/")) {
    return;
  }
  if (f.rel.rfind("src/tensor/simd", 0) == 0) return;
  if (f.rel.rfind("src/common/cpu_features", 0) == 0) return;

  static const std::set<std::string> kIsaHeaders = {
      "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
      "smmintrin.h", "tmmintrin.h", "nmmintrin.h", "avxintrin.h",
      "arm_neon.h",  "arm_sve.h",
  };
  for (const IncludeDirective& inc : f.includes) {
    if (kIsaHeaders.count(inc.path) > 0) {
      Report(f, inc.line, "simd-isolation",
             "#include <" + inc.path +
                 "> outside src/tensor/simd*: raw intrinsics live behind "
                 "the dispatched SimdKernels table (tensor/simd.h)");
    }
  }

  auto is_vector_intrinsic = [](const std::string& s) {
    // x86: _mm_*/_mm256_*/_mm512_* calls and __m128/__m256/__m512 types.
    if (s.rfind("_mm", 0) == 0) return true;
    if (s.rfind("__m128", 0) == 0 || s.rfind("__m256", 0) == 0 ||
        s.rfind("__m512", 0) == 0) {
      return true;
    }
    // NEON: vector types (float32x4_t, uint32x4_t, ...) and the v*q_f32
    // style op names.
    if (s.rfind("float32x", 0) == 0 || s.rfind("float64x", 0) == 0 ||
        s.rfind("float16x", 0) == 0 || s.rfind("uint32x", 0) == 0 ||
        s.rfind("uint8x", 0) == 0 || s.rfind("int32x", 0) == 0 ||
        s.rfind("vld1", 0) == 0 || s.rfind("vst1", 0) == 0) {
      return true;
    }
    if (!s.empty() && s[0] == 'v' &&
        (s.find("q_f32") != std::string::npos ||
         s.find("q_u32") != std::string::npos ||
         s.find("q_s32") != std::string::npos ||
         s.find("_n_f32") != std::string::npos)) {
      return true;
    }
    return false;
  };
  for (const Token* t : toks) {
    if (t->kind != TokKind::kIdent) continue;
    if (is_vector_intrinsic(t->text)) {
      Report(f, t->line, "simd-isolation",
             "SIMD intrinsic '" + t->text +
                 "' outside src/tensor/simd*: add or extend a kernel in "
                 "the dispatched SimdKernels table instead");
    } else if (t->text == "__builtin_cpu_supports" ||
               t->text == "__builtin_cpu_init") {
      Report(f, t->line, "simd-isolation",
             "CPU feature probing outside src/common/cpu_features.*: use "
             "CpuHasAvx2Fma()/CpuHasNeon() so tier selection has one "
             "truth");
    }
  }

  // Vector-ISA #if forks (architecture macros like __x86_64__ stay
  // legal — they gate compilation targets, not lane semantics).
  static const char* kIsaMacros[] = {"__AVX", "__SSE", "__FMA__",
                                     "__ARM_NEON", "__ARM_FEATURE"};
  const std::vector<bool> pp = PreprocessorLines(f.lines);
  for (size_t i = 0; i < f.lines.size(); ++i) {
    if (!pp[i + 1]) continue;
    for (const char* macro : kIsaMacros) {
      if (f.lines[i].find(macro) != std::string::npos) {
        Report(f, i + 1, "simd-isolation",
               std::string("vector-ISA preprocessor fork on ") + macro +
                   " outside src/tensor/simd*: per-tier code belongs in "
                   "the kernel TUs");
        break;
      }
    }
  }
}

/// Determinism rule: values derived from std::this_thread::get_id() are
/// pure scheduling artifacts. The telemetry layer identifies threads by
/// registration order (stable per run shape); nothing else may key state
/// or stats off a thread id.
void CheckThreadIdInStats(const SourceFile& f,
                          const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (IsIdent(toks[i], "get_id") && i >= 2 &&
        IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "this_thread")) {
      Report(f, toks[i]->line, "thread-id-in-stats",
             "std::this_thread::get_id() is schedule-dependent; key "
             "per-thread state off registration order (see "
             "telemetry::Tracer) so stats stay deterministic");
    }
  }
}

/// Names declared as scalar float/double variables: `double x =`,
/// `float y;`, `double z{...}`. Parameters and members are excluded by
/// requiring an initializer or plain `;` so the rule stays precise.
std::set<std::string> ScalarFloatNames(const std::vector<const Token*>& toks,
                                       size_t begin, size_t end) {
  std::set<std::string> names;
  if (end > toks.size()) end = toks.size();
  for (size_t i = begin; i + 2 < end; ++i) {
    if (!IsIdent(toks[i], "double") && !IsIdent(toks[i], "float")) continue;
    const Token* name = toks[i + 1];
    const Token* next = toks[i + 2];
    if (name->kind != TokKind::kIdent) continue;
    if (IsPunct(next, "=") || IsPunct(next, ";") || IsPunct(next, "{")) {
      names.insert(name->text);
    }
  }
  return names;
}

/// Determinism rule: accumulating into a shared scalar float inside a
/// ParallelFor body sums chunks in completion order — a different order
/// (and different rounding) every run, and usually a data race besides.
/// Element-wise updates (`out[i] += x`, `dst.row(r)[c] += v`) are fine:
/// each element is owned by exactly one chunk. Deterministic escape: keep
/// per-chunk partials and reduce in index order, then suppress with
/// `gnndm-lint: suppress(float-accum-in-parallel): <why ordered>`.
void CheckFloatAccumInParallel(const SourceFile& f,
                               const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  const std::set<std::string> floats =
      ScalarFloatNames(toks, 0, toks.size());
  if (floats.empty()) return;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "ParallelFor") &&
        !IsIdent(toks[i], "ParallelFor2D") &&
        !IsIdent(toks[i], "ParallelForShards")) {
      continue;
    }
    if (!IsPunct(toks[i + 1], "(")) continue;
    long depth = 0;
    size_t end = toks.size();
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (IsPunct(toks[j], "(")) ++depth;
      if (IsPunct(toks[j], ")") && --depth == 0) {
        end = j;
        break;
      }
    }
    // A float declared *inside* the call extent (a lambda-body local) is
    // chunk-private: each invocation owns its own copy, so accumulating
    // into it is a deterministic per-chunk partial, not a shared sum.
    const std::set<std::string> extent_locals =
        ScalarFloatNames(toks, i + 2, end);
    for (size_t j = i + 2; j < end; ++j) {
      if (!IsPunct(toks[j], "+=") && !IsPunct(toks[j], "-=")) continue;
      const Token* lhs = toks[j - 1];
      if (lhs->kind != TokKind::kIdent || floats.count(lhs->text) == 0 ||
          extent_locals.count(lhs->text) > 0) {
        continue;
      }
      // `x[k] += v` and `p->x += v` are element/field updates, not shared
      // scalar accumulation; require the identifier to stand alone.
      if (j >= 2 && (IsPunct(toks[j - 2], "]") || IsPunct(toks[j - 2], ".") ||
                     IsPunct(toks[j - 2], "->"))) {
        continue;
      }
      Report(f, lhs->line, "float-accum-in-parallel",
             "accumulation into shared float '" + lhs->text +
                 "' inside a ParallelFor body sums in completion order "
                 "(nondeterministic rounding, likely racy); keep "
                 "per-chunk partials and reduce in index order");
    }
    i = end;
  }
}

/// Perf rule (the paper's central measurement): per-iteration heap
/// allocation inside sampler/kernel inner loops is a silent framework
/// overhead that corrupts exactly the data-management costs this repo
/// exists to measure. A token is "hot" when it sits inside a
/// ParallelFor/ParallelFor2D/ParallelForShards call extent (the body runs
/// once per chunk on the worker pool), or inside a loop of a function
/// annotated `// gnndm-hot` (so the fix — hoisting the buffer above the
/// loop, into SamplerScratch or a caller-owned scratch struct — is by
/// construction not re-flagged). The pattern matcher is AllocationSites;
/// the effect pass reuses it for the transitive `allocates` effect.
void CheckHotPathAlloc(const SourceFile& f,
                       const std::vector<const Token*>& toks,
                       const std::vector<uint8_t>& flags) {
  if (!f.InDir("src/")) return;
  const std::set<std::string> unordered = UnorderedNames(toks);
  for (const AllocSite& site :
       AllocationSites(toks, 0, toks.size(), unordered, flags)) {
    if (site.tok_index >= flags.size()) continue;
    const uint8_t fl = flags[site.tok_index];
    const bool hot =
        (fl & kInParallel) != 0 ||
        ((fl & kInHotFn) != 0 && (fl & kInLoop) != 0);
    if (!hot) continue;
    Report(f, site.line, "hot-path-alloc", site.message);
  }
}

}  // namespace

std::set<std::string> UnorderedNames(const std::vector<const Token*>& toks) {
  std::set<std::string> names;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "unordered_map") &&
        !IsIdent(toks[i], "unordered_set")) {
      continue;
    }
    size_t j = i + 1;
    if (j < toks.size() && IsPunct(toks[j], "<")) {
      j = SkipTemplateArgs(toks, j);
    }
    while (j < toks.size() &&
           (IsPunct(toks[j], ">") || IsPunct(toks[j], ">>") ||
            IsPunct(toks[j], "&") || IsPunct(toks[j], "*") ||
            IsIdent(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j]->kind == TokKind::kIdent) {
      names.insert(toks[j]->text);
    }
  }
  return names;
}

bool IsStaticDecl(const std::vector<const Token*>& toks, size_t i) {
  for (size_t back = 0; back < 4 && i - back > 0; ++back) {
    const Token* t = toks[i - back - 1];
    if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}") ||
        IsPunct(t, "(")) {
      return false;
    }
    if (IsIdent(t, "static") || IsIdent(t, "thread_local")) return true;
  }
  return false;
}

std::vector<AllocSite> AllocationSites(const std::vector<const Token*>& toks,
                                       size_t begin, size_t end,
                                       const std::set<std::string>& unordered,
                                       const std::vector<uint8_t>& flags) {
  std::vector<AllocSite> out;
  static const std::set<std::string> kOwningContainers = {
      "vector", "string", "deque", "map", "set",
      "unordered_map", "unordered_set", "multimap", "multiset",
  };
  if (end > toks.size()) end = toks.size();
  for (size_t i = begin; i < end; ++i) {
    if (i < flags.size() && (flags[i] & kPp) != 0) continue;
    const Token* t = toks[i];
    if (t->kind != TokKind::kIdent) continue;
    const bool member =
        i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));

    if (t->text == "new" && !member) {
      out.push_back({i, t->line,
                     "'new' on a hot path allocates per iteration; hoist "
                     "the buffer into caller-owned scratch (see "
                     "SamplerScratch)"});
      continue;
    }
    if (!member &&
        (t->text == "make_unique" || t->text == "make_shared")) {
      out.push_back({i, t->line,
                     "std::" + t->text +
                         " on a hot path allocates per iteration; "
                         "construct the object once outside and reuse it"});
      continue;
    }
    const bool std_qualified = i >= 2 && IsPunct(toks[i - 1], "::") &&
                               IsIdent(toks[i - 2], "std");
    if (std_qualified && t->text == "function") {
      out.push_back({i, t->line,
                     "std::function on a hot path type-erases (and usually "
                     "heap-allocates) per materialization; take a "
                     "gnndm::FunctionRef (common/function_ref.h) instead"});
      continue;
    }
    if (std_qualified && kOwningContainers.count(t->text) > 0) {
      // `using X = std::vector<...>` defines a type, allocates nothing.
      if (i >= 5 && IsPunct(toks[i - 3], "=") &&
          IsIdent(toks[i - 5], "using")) {
        continue;
      }
      size_t j = i + 1;
      if (j < toks.size() && IsPunct(toks[j], "<")) {
        j = SkipTemplateArgs(toks, j);
      }
      // A reference/pointer to an existing container, or nested type
      // access (std::vector<T>::iterator), does not allocate.
      bool non_owning = false;
      while (j < toks.size() &&
             (IsPunct(toks[j], "&") || IsPunct(toks[j], "*") ||
              IsPunct(toks[j], "::") || IsIdent(toks[j], "const"))) {
        non_owning = true;
        ++j;
      }
      if (non_owning || IsStaticDecl(toks, i - 2)) continue;
      out.push_back({i, t->line,
                     "constructing a std::" + t->text +
                         " on a hot path allocates per iteration; hoist it "
                         "above the loop / ParallelFor and reuse its "
                         "capacity"});
      continue;
    }
    if (member &&
        (t->text == "insert" || t->text == "emplace" ||
         t->text == "try_emplace") &&
        i >= 2 && toks[i - 2]->kind == TokKind::kIdent &&
        unordered.count(toks[i - 2]->text) > 0) {
      out.push_back({i, t->line,
                     "insertion into unordered container '" +
                         toks[i - 2]->text +
                         "' on a hot path allocates a node (and may "
                         "rehash) per key; pre-size a flat structure or "
                         "renumber with VertexRenumberer scratch"});
    }
  }
  return out;
}

void RunFileRules(const SourceFile& f) {
  const std::vector<const Token*> toks = CodeTokens(f);
  CheckIncludeGuard(f);
  CheckConcurrencyPrimitives(f, toks);
  CheckBatchPlane(f, toks);
  CheckAssert(f, toks);
  CheckDeserializationValidates(f, toks);
  CheckRawLoopKernels(f);
  CheckTimerUse(f, toks);
  CheckUnorderedIteration(f, toks);
  CheckRawRng(f, toks);
  CheckSimdIsolation(f, toks);
  CheckThreadIdInStats(f, toks);
  CheckFloatAccumInParallel(f, toks);
  CheckHotPathAlloc(f, toks, f.tok_flags);
  CheckIncludeOrder(f);
}

void CheckMetricNameRegistry(const std::vector<SourceFile>& files) {
  const SourceFile* registry = nullptr;
  for (const SourceFile& f : files) {
    if (f.rel == "src/common/telemetry_names.h") registry = &f;
  }
  if (registry == nullptr) return;
  // Registered constants: `... char kName[] = "..."`. Registered builder
  // functions: `std::string Name(...)` declared in the registry header.
  std::set<std::string> constants;
  std::set<std::string> builders;
  const std::vector<const Token*> reg = CodeTokens(*registry);
  for (size_t i = 0; i + 2 < reg.size(); ++i) {
    if (IsIdent(reg[i], "char") && reg[i + 1]->kind == TokKind::kIdent &&
        IsPunct(reg[i + 2], "[")) {
      constants.insert(reg[i + 1]->text);
    }
    if (IsStdQualified(reg, i, "string") && i + 4 < reg.size() &&
        reg[i + 3]->kind == TokKind::kIdent && IsPunct(reg[i + 4], "(")) {
      builders.insert(reg[i + 3]->text);
    }
  }
  for (const SourceFile& f : files) {
    if (!f.InDir("src/") && !f.InDir("bench/")) continue;
    if (f.rel == "src/common/telemetry.h" ||
        f.rel == "src/common/telemetry.cc" ||
        f.rel == "src/common/telemetry_names.h") {
      continue;
    }
    const std::vector<const Token*> toks = CodeTokens(f);
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(IsIdent(toks[i], "GetCounter") || IsIdent(toks[i], "GetGauge") ||
            IsIdent(toks[i], "GetHistogram")) ||
          !IsPunct(toks[i + 1], "(")) {
        continue;
      }
      // Skip the declarations themselves (`Counter& GetCounter(...)`):
      // a declaration's first argument token is a type name followed by
      // more idents, which the checks below already accept — but a
      // `const` right after the paren is a sure declaration marker.
      const size_t arg = i + 2;
      if (toks[arg]->kind == TokKind::kString) {
        Report(f, toks[arg]->line, "metric-name-registry",
               "instrument name is a raw string literal; use a constant "
               "from src/common/telemetry_names.h so typos fail lint "
               "instead of forking the series");
        continue;
      }
      // Resolve a possibly qualified identifier chain to its last name.
      size_t j = arg;
      while (j + 2 < toks.size() && toks[j]->kind == TokKind::kIdent &&
             IsPunct(toks[j + 1], "::")) {
        j += 2;
      }
      if (toks[j]->kind != TokKind::kIdent) continue;
      const std::string& name = toks[j]->text;
      if (name.size() >= 2 && name[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(name[1])) &&
          constants.count(name) == 0 && builders.count(name) == 0) {
        Report(f, toks[j]->line, "metric-name-registry",
               "'" + name +
                   "' is not declared in src/common/telemetry_names.h; "
                   "add it to the registry (or fix the typo)");
      }
    }
  }
}

}  // namespace gnndm_lint
