// Token lexer for gnndm_lint: C++-aware enough that comments, string
// and char literals (including raw strings), and multi-character
// operators are each one token, so no rule can be fooled by a banned
// construct quoted in prose or hidden behind creative spacing.
#ifndef GNNDM_TOOLS_LINT_LEXER_H_
#define GNNDM_TOOLS_LINT_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace gnndm_lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals
  kString,   // "..." and R"(...)" (text excludes quotes)
  kChar,     // '...'
  kComment,  // // and /* */ (text excludes the delimiters)
  kPunct,    // operators and punctuation, multi-char ops combined
};

struct Token {
  TokKind kind;
  std::string text;
  size_t line;  // 1-based line of the token's first character
};

std::vector<Token> Lex(const std::string& src);

std::string Trim(const std::string& s);
bool StartsWith(const std::string& s, const std::string& prefix);

// ---------------------------------------------------------------------------
// Helpers over the comment-stripped code-token view
// ---------------------------------------------------------------------------

bool IsIdent(const Token* t, const char* text);
bool IsPunct(const Token* t, const char* text);

/// True if toks[i..] begins the qualified sequence std::<name>.
bool IsStdQualified(const std::vector<const Token*>& toks, size_t i,
                    const char* name);

/// Given toks[i] == "<", returns the index one past the matching ">".
/// The lexer emits ">>" as one token; it closes two levels.
size_t SkipTemplateArgs(const std::vector<const Token*>& toks, size_t i);

}  // namespace gnndm_lint

#endif  // GNNDM_TOOLS_LINT_LEXER_H_
