// Repo-level include analysis: module layering against tools/layers.txt,
// the IWYU-lite transitive-include pass, include-order enforcement, the
// module-graph exports, and the --fix rewriter for the mechanical rules.
#ifndef GNNDM_TOOLS_LINT_INCLUDE_GRAPH_H_
#define GNNDM_TOOLS_LINT_INCLUDE_GRAPH_H_

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/source_file.h"

namespace gnndm_lint {

struct LayerManifest {
  bool loaded = false;
  std::map<std::string, int> layer_of;             // module -> layer index
  std::vector<std::vector<std::string>> layers;    // index -> modules
};

LayerManifest LoadLayerManifest(const std::filesystem::path& root);

/// The include edges of the module DAG, with per-edge multiplicity and a
/// representative occurrence for diagnostics.
struct ModuleGraph {
  std::map<std::pair<std::string, std::string>, size_t> edge_count;
  std::map<std::pair<std::string, std::string>,
           std::pair<std::string, size_t>>
      edge_site;  // (from,to) -> (file, line) of first occurrence
  std::set<std::string> modules;
};

ModuleGraph BuildModuleGraph(const std::vector<SourceFile>& files);

/// Layering pass: manifest membership, direction, and cycles. Reports
/// one finding per offending #include line so suppressions (and fixes)
/// land where the dependency is introduced.
void CheckLayering(const std::vector<SourceFile>& files,
                   const LayerManifest& manifest, const ModuleGraph& graph);

void CheckTransitiveIncludes(std::vector<SourceFile>& files);

void CheckIncludeOrder(const SourceFile& f);

void WriteGraphJson(const std::string& path, const LayerManifest& manifest,
                    const ModuleGraph& graph);
void WriteGraphDot(const std::string& path, const LayerManifest& manifest,
                   const ModuleGraph& graph);

/// Applies every mechanical fix implied by the current findings and
/// writes the changed files. Returns the number of files rewritten.
size_t ApplyFixes(const std::vector<SourceFile>& files,
                  const std::filesystem::path& root);

}  // namespace gnndm_lint

#endif  // GNNDM_TOOLS_LINT_INCLUDE_GRAPH_H_
