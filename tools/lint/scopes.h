// Scope scanner: classifies every brace in the code-token stream and
// exposes the result as per-token ScopeFlag bits. The classification is
// syntactic but token-accurate: braces inside strings/comments were
// already removed by the lexer, preprocessor lines (including multi-line
// macro bodies via backslash continuation) are flagged kPp and skipped,
// and lambdas, braceless loop bodies, and ParallelFor call extents are
// all tracked.
#ifndef GNNDM_TOOLS_LINT_SCOPES_H_
#define GNNDM_TOOLS_LINT_SCOPES_H_

#include <cstdint>
#include <vector>

#include "lint/source_file.h"

namespace gnndm_lint {

std::vector<uint8_t> ScanScopes(const SourceFile& f,
                                const std::vector<const Token*>& toks,
                                const std::vector<bool>& pp_lines);

}  // namespace gnndm_lint

#endif  // GNNDM_TOOLS_LINT_SCOPES_H_
