// Per-file lint rules (see the catalogue in tools/gnndm_lint.cc and
// DESIGN.md §11), plus the token-pattern helpers the interprocedural
// effect pass shares with them.
#ifndef GNNDM_TOOLS_LINT_RULES_H_
#define GNNDM_TOOLS_LINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "lint/source_file.h"

namespace gnndm_lint {

/// Names declared (anywhere in the token stream) with an unordered
/// container type. Over-approximates on purpose — see the rule comment.
std::set<std::string> UnorderedNames(const std::vector<const Token*>& toks);

/// True if a declaration whose type starts at toks[i] is static or
/// thread_local (scan back a few tokens, stopping at statement
/// boundaries) — such a local allocates once, not per iteration.
bool IsStaticDecl(const std::vector<const Token*>& toks, size_t i);

/// One heap-allocation pattern match (the PR 6 hot-path-alloc patterns):
/// `new`, make_unique/make_shared, owning-container construction,
/// std::function materialization, unordered insertion.
struct AllocSite {
  size_t tok_index;     // index into the code-token vector
  size_t line;
  std::string message;  // the hot-path-alloc diagnostic for this pattern
};

/// Scans toks[begin, end) for the allocation patterns, independent of
/// hotness. CheckHotPathAlloc filters the result by scope flags; the
/// effect pass uses it verbatim to infer the `allocates` effect.
/// `unordered` is the file-wide UnorderedNames set; tokens whose flag in
/// `flags` has kPp set are skipped (pass an empty vector to disable).
std::vector<AllocSite> AllocationSites(const std::vector<const Token*>& toks,
                                       size_t begin, size_t end,
                                       const std::set<std::string>& unordered,
                                       const std::vector<uint8_t>& flags);

/// Runs every per-file rule on `f` (include-order included).
void RunFileRules(const SourceFile& f);

/// Repo pass: every GetCounter/GetGauge/GetHistogram call site in src/
/// and bench/ names its instrument through src/common/telemetry_names.h.
void CheckMetricNameRegistry(const std::vector<SourceFile>& files);

}  // namespace gnndm_lint

#endif  // GNNDM_TOOLS_LINT_RULES_H_
