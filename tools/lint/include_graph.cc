#include "lint/include_graph.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>

namespace gnndm_lint {

namespace fs = std::filesystem;

LayerManifest LoadLayerManifest(const fs::path& root) {
  LayerManifest m;
  const std::string rel = "tools/layers.txt";
  std::ifstream in(root / rel);
  if (!in) {
    Report(rel, 0, "layering",
           "layer manifest tools/layers.txt is missing; every module "
           "must be assigned a layer");
    return m;
  }
  std::string line;
  size_t ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    const std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream words(t);
    std::string word;
    words >> word;
    if (word != "layer") {
      Report(rel, ln, "layering",
             "unrecognized manifest directive '" + word +
                 "'; expected 'layer <module>...'");
      continue;
    }
    std::vector<std::string> mods;
    while (words >> word) {
      if (m.layer_of.count(word) > 0) {
        Report(rel, ln, "layering",
               "module '" + word + "' appears in more than one layer");
        continue;
      }
      m.layer_of[word] = static_cast<int>(m.layers.size());
      mods.push_back(word);
    }
    if (!mods.empty()) m.layers.push_back(std::move(mods));
  }
  m.loaded = true;
  return m;
}

ModuleGraph BuildModuleGraph(const std::vector<SourceFile>& files) {
  ModuleGraph g;
  for (const SourceFile& f : files) {
    g.modules.insert(f.module);
    for (const IncludeDirective& inc : f.includes) {
      if (inc.resolved.empty()) continue;
      const std::string to = ModuleOf(inc.resolved);
      if (to == f.module) continue;
      const auto key = std::make_pair(f.module, to);
      if (g.edge_count[key]++ == 0) {
        g.edge_site[key] = {f.rel, inc.line};
      }
      g.modules.insert(to);
    }
  }
  return g;
}

void CheckLayering(const std::vector<SourceFile>& files,
                   const LayerManifest& manifest, const ModuleGraph& graph) {
  if (!manifest.loaded) return;
  std::set<std::string> unknown_reported;
  for (const SourceFile& f : files) {
    const auto from_it = manifest.layer_of.find(f.module);
    if (from_it == manifest.layer_of.end()) {
      if (unknown_reported.insert(f.module).second) {
        Report(f.rel, 0, "layering",
               "module '" + f.module +
                   "' is not assigned a layer in tools/layers.txt; add "
                   "it to the manifest");
      }
      continue;
    }
    for (const IncludeDirective& inc : f.includes) {
      if (inc.resolved.empty()) continue;
      const std::string to = ModuleOf(inc.resolved);
      if (to == f.module) continue;
      const auto to_it = manifest.layer_of.find(to);
      if (to_it == manifest.layer_of.end()) {
        if (unknown_reported.insert(to).second) {
          Report(f.rel, inc.line, "layering",
                 "included module '" + to +
                     "' is not assigned a layer in tools/layers.txt");
        }
        continue;
      }
      if (to_it->second > from_it->second) {
        Report(f.rel, inc.line, "layering",
               "upward include: module '" + f.module + "' (layer " +
                   std::to_string(from_it->second) + ") includes '" +
                   inc.resolved + "' from module '" + to + "' (layer " +
                   std::to_string(to_it->second) +
                   "); dependencies must point strictly downward");
      } else if (to_it->second == from_it->second) {
        Report(f.rel, inc.line, "layering",
               "cross-layer include: modules '" + f.module + "' and '" +
                   to + "' share layer " +
                   std::to_string(from_it->second) +
                   " and must stay mutually independent; move one of "
                   "them in tools/layers.txt or break the dependency");
      }
    }
  }
  // Cycle detection on the module digraph, independent of the manifest
  // (a manifest edit must never be able to hide a genuine cycle).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [edge, count] : graph.edge_count) {
    (void)count;
    adj[edge.first].push_back(edge.second);
  }
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> path;
  std::function<void(const std::string&)> dfs =
      [&](const std::string& m) {
        state[m] = 1;
        path.push_back(m);
        for (const std::string& n : adj[m]) {
          if (state[n] == 1) {
            std::string cycle = n;
            for (size_t k = path.size(); k-- > 0;) {
              cycle += " -> " + path[k];
              if (path[k] == n) break;
            }
            const auto site = graph.edge_site.at({m, n});
            Report(site.first, site.second, "layering",
                   "module dependency cycle: " + cycle);
          } else if (state[n] == 0) {
            dfs(n);
          }
        }
        path.pop_back();
        state[m] = 2;
      };
  for (const std::string& m : graph.modules) {
    if (state[m] == 0) dfs(m);
  }
}

// ---------------------------------------------------------------------------
// Transitive-include pass (IWYU-lite)
// ---------------------------------------------------------------------------
//
// Each src/ header "provides" the PascalCase types/functions it declares
// at namespace scope plus the macros it defines. Using a name whose
// provider is unique, reachable only transitively, and not included
// directly is a violation: the day the intermediate header drops the
// include, every such use site breaks at once. Only names with exactly
// one providing header participate — ambiguous names prove nothing about
// which include is missing.

namespace {

bool IsPascalCase(const std::string& s) {
  if (s.size() < 2 || !std::isupper(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  bool has_lower = false;
  for (char c : s) {
    if (c == '_') return false;
    if (std::islower(static_cast<unsigned char>(c))) has_lower = true;
  }
  return has_lower;
}

bool IsMacroName(const std::string& s) {
  if (s.size() < 4) return false;
  if (s.size() > 3 && s.compare(s.size() - 3, 3, "_H_") == 0) return false;
  bool has_underscore = false;
  for (char c : s) {
    if (c == '_') {
      has_underscore = true;
    } else if (!std::isupper(static_cast<unsigned char>(c)) &&
               !std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return has_underscore;
}

/// Names `f` declares: PascalCase types defined at namespace scope
/// (class/struct/enum definitions — forward declarations don't count),
/// `using X =` aliases, free functions, and #define'd macros.
std::set<std::string> DeclaredNames(const SourceFile& f,
                                    const std::vector<const Token*>& toks) {
  std::set<std::string> names;
  for (size_t i = 0; i < toks.size() && i < f.tok_flags.size(); ++i) {
    if ((f.tok_flags[i] & kNsScope) == 0 || (f.tok_flags[i] & kPp) != 0) {
      continue;
    }
    const Token* t = toks[i];
    if (t->kind != TokKind::kIdent) continue;
    if (t->text == "class" || t->text == "struct" || t->text == "enum") {
      size_t j = i + 1;
      if (j < toks.size() && IsIdent(toks[j], "class")) ++j;  // enum class
      if (j + 1 < toks.size() && toks[j]->kind == TokKind::kIdent &&
          IsPascalCase(toks[j]->text) &&
          (IsPunct(toks[j + 1], "{") || IsPunct(toks[j + 1], ":") ||
           IsIdent(toks[j + 1], "final"))) {
        names.insert(toks[j]->text);
      }
    } else if (t->text == "using" && i + 2 < toks.size() &&
               toks[i + 1]->kind == TokKind::kIdent &&
               IsPascalCase(toks[i + 1]->text) &&
               IsPunct(toks[i + 2], "=")) {
      names.insert(toks[i + 1]->text);
    } else if (IsPascalCase(t->text) && i + 1 < toks.size() &&
               IsPunct(toks[i + 1], "(") && i > 0 &&
               (toks[i - 1]->kind == TokKind::kIdent ||
                IsPunct(toks[i - 1], ">") || IsPunct(toks[i - 1], "&") ||
                IsPunct(toks[i - 1], "*"))) {
      // Free function with a preceding return type. Method definitions
      // (Class::Method) have '::' before the name and are skipped.
      names.insert(t->text);
    }
  }
  for (const std::string& raw : f.lines) {
    const std::string t = Trim(raw);
    if (!StartsWith(t, "#define")) continue;
    std::istringstream words(t.substr(7));
    std::string name;
    words >> name;
    const size_t paren = name.find('(');
    if (paren != std::string::npos) name = name.substr(0, paren);
    if (IsMacroName(name)) names.insert(name);
  }
  return names;
}

}  // namespace

void CheckTransitiveIncludes(std::vector<SourceFile>& files) {
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& f : files) by_rel[f.rel] = &f;

  // name -> providing src/ header (unique providers only).
  std::map<std::string, std::string> provider;
  std::set<std::string> ambiguous;
  std::map<std::string, std::set<std::string>> declared;
  for (const SourceFile& f : files) {
    declared[f.rel] = DeclaredNames(f, CodeTokens(f));
    if (!f.is_header || !f.InDir("src/")) continue;
    for (const std::string& name : declared[f.rel]) {
      auto [it, inserted] = provider.emplace(name, f.rel);
      if (!inserted && it->second != f.rel) ambiguous.insert(name);
    }
  }
  for (const std::string& name : ambiguous) provider.erase(name);

  // Transitive closure of project includes, memoized.
  std::map<std::string, std::set<std::string>> reach_memo;
  std::function<const std::set<std::string>&(const std::string&)> reach =
      [&](const std::string& rel) -> const std::set<std::string>& {
    auto it = reach_memo.find(rel);
    if (it != reach_memo.end()) return it->second;
    reach_memo[rel];  // seed the memo first so include cycles terminate
    const auto file_it = by_rel.find(rel);
    if (file_it == by_rel.end()) return reach_memo[rel];
    std::vector<std::string> direct;
    for (const IncludeDirective& inc : file_it->second->includes) {
      if (!inc.resolved.empty()) direct.push_back(inc.resolved);
    }
    for (const std::string& d : direct) {
      reach_memo[rel].insert(d);
      const std::set<std::string> sub = reach(d);  // copy: memo may grow
      reach_memo[rel].insert(sub.begin(), sub.end());
    }
    return reach_memo[rel];
  };

  for (SourceFile& f : files) {
    std::set<std::string> direct;
    for (const IncludeDirective& inc : f.includes) {
      if (!inc.resolved.empty()) direct.insert(inc.resolved);
    }
    const std::set<std::string> reachable = reach(f.rel);
    const std::vector<const Token*> toks = CodeTokens(f);
    const std::set<std::string>& own = declared[f.rel];
    std::set<std::string> reported;  // one finding per missing header
    for (size_t i = 0; i < toks.size() && i < f.tok_flags.size(); ++i) {
      if ((f.tok_flags[i] & kPp) != 0) continue;
      const Token* t = toks[i];
      if (t->kind != TokKind::kIdent) continue;
      if (i > 0 &&
          (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
        continue;  // member access: not a use of the global name
      }
      const auto p = provider.find(t->text);
      if (p == provider.end()) continue;
      const std::string& hdr = p->second;
      if (hdr == f.rel || own.count(t->text) > 0) continue;
      if (direct.count(hdr) > 0 || reported.count(hdr) > 0) continue;
      // Only flag reliance on a *transitive* include: if the provider is
      // not reachable at all, the name is a coincidental local.
      if (reachable.count(hdr) == 0) continue;
      reported.insert(hdr);
      Report(f.rel, t->line, "transitive-include",
             "uses '" + t->text + "' from " + hdr +
                 " without including it directly (currently reached "
                 "transitively); add the include or run --fix",
             hdr);
    }
  }
}

// ---------------------------------------------------------------------------
// Include-order rule
// ---------------------------------------------------------------------------

namespace {

/// A contiguous run of quoted project-include lines.
struct IncludeBlock {
  size_t first_idx = 0;  // index into f.includes
  size_t count = 0;
};

std::vector<IncludeBlock> ProjectIncludeBlocks(const SourceFile& f) {
  std::vector<IncludeBlock> blocks;
  for (size_t i = 0; i < f.includes.size(); ++i) {
    if (f.includes[i].angled || f.includes[i].resolved.empty()) continue;
    if (!blocks.empty()) {
      const IncludeDirective& prev =
          f.includes[blocks.back().first_idx + blocks.back().count - 1];
      if (f.includes[i].line == prev.line + 1) {
        ++blocks.back().count;
        continue;
      }
    }
    blocks.push_back({i, 1});
  }
  return blocks;
}

}  // namespace

void CheckIncludeOrder(const SourceFile& f) {
  const std::string own = OwnHeaderPath(f);
  bool first_block = true;
  for (const IncludeBlock& b : ProjectIncludeBlocks(f)) {
    std::vector<std::string> paths;
    for (size_t k = 0; k < b.count; ++k) {
      paths.push_back(f.includes[b.first_idx + k].path);
    }
    // The own header may (and should) lead the first block out of order.
    size_t begin = 0;
    if (first_block && !own.empty() && !paths.empty() && paths[0] == own) {
      begin = 1;
    }
    first_block = false;
    for (size_t k = begin + 1; k < paths.size(); ++k) {
      if (paths[k] < paths[k - 1]) {
        Report(f.rel, f.includes[b.first_idx + k].line, "include-order",
               "project include block is not sorted ('" + paths[k] +
                   "' after '" + paths[k - 1] +
                   "'); sort it or run --fix");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dependency-graph export
// ---------------------------------------------------------------------------

void WriteGraphJson(const std::string& path, const LayerManifest& manifest,
                    const ModuleGraph& graph) {
  std::ofstream out(path);
  out << "{\n  \"modules\": [\n";
  bool first = true;
  for (const std::string& m : graph.modules) {
    const auto it = manifest.layer_of.find(m);
    out << (first ? "" : ",\n") << "    {\"name\": \"" << m
        << "\", \"layer\": "
        << (it == manifest.layer_of.end() ? -1 : it->second) << "}";
    first = false;
  }
  out << "\n  ],\n  \"edges\": [\n";
  first = true;
  for (const auto& [edge, count] : graph.edge_count) {
    out << (first ? "" : ",\n") << "    {\"from\": \"" << edge.first
        << "\", \"to\": \"" << edge.second << "\", \"includes\": " << count
        << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
}

void WriteGraphDot(const std::string& path, const LayerManifest& manifest,
                   const ModuleGraph& graph) {
  std::ofstream out(path);
  out << "digraph gnndm_modules {\n  rankdir=BT;\n"
      << "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (size_t l = 0; l < manifest.layers.size(); ++l) {
    out << "  { rank=same;";
    for (const std::string& m : manifest.layers[l]) {
      if (graph.modules.count(m) > 0) out << " \"" << m << "\";";
    }
    out << " }  // layer " << l << "\n";
  }
  for (const auto& [edge, count] : graph.edge_count) {
    out << "  \"" << edge.first << "\" -> \"" << edge.second
        << "\" [label=\"" << count << "\"];\n";
  }
  out << "}\n";
}

// ---------------------------------------------------------------------------
// --fix: mechanical rewrites for guard / direct-include / ordering
// ---------------------------------------------------------------------------

namespace {

/// The include-line text a repo-relative header goes by in this tree
/// (quoted paths are rooted at src/).
std::string IncludeSpelling(const std::string& resolved) {
  return StartsWith(resolved, "src/") ? resolved.substr(4) : resolved;
}

/// Rewrites `lines` in place: inserts the missing include guard, adds
/// the missing direct includes, and re-sorts every project-include
/// block. Returns true if anything changed.
bool FixFileLines(const SourceFile& f, const std::set<std::string>& add,
                  bool fix_guard, const fs::path& root,
                  std::vector<std::string>& lines) {
  const std::vector<std::string> before = lines;

  auto is_project_include = [&](const std::string& raw,
                                std::string* path_out) {
    const std::string t = Trim(raw);
    if (!StartsWith(t, "#include \"")) return false;
    const size_t e = t.find('"', 10);
    if (e == std::string::npos) return false;
    const std::string p = t.substr(10, e - 10);
    if (!fs::exists(root / "src" / p) && !fs::exists(root / p) &&
        !fs::exists(root / fs::path(f.rel).parent_path() / p)) {
      return false;
    }
    if (path_out != nullptr) *path_out = p;
    return true;
  };

  if (fix_guard && f.is_header) {
    const std::string guard = ExpectedGuard(f.rel);
    // After the leading comment block, before the first code line.
    size_t at = 0;
    while (at < lines.size() &&
           (Trim(lines[at]).empty() || StartsWith(Trim(lines[at]), "//"))) {
      ++at;
    }
    lines.insert(lines.begin() + static_cast<long>(at),
                 {"#ifndef " + guard, "#define " + guard, ""});
    while (!lines.empty() && Trim(lines.back()).empty()) lines.pop_back();
    lines.push_back("");
    lines.push_back("#endif  // " + guard);
  }

  if (!add.empty()) {
    // Insert into the last project-include block that isn't just the own
    // header; create a fresh block if there is none.
    std::vector<std::pair<size_t, size_t>> blocks;  // [first, last] line idx
    std::string p;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!is_project_include(lines[i], &p)) continue;
      if (!blocks.empty() && blocks.back().second + 1 == i) {
        blocks.back().second = i;
      } else {
        blocks.emplace_back(i, i);
      }
    }
    const std::string own = OwnHeaderPath(f);
    size_t insert_at = 0;
    bool found = false;
    for (size_t b = blocks.size(); b-- > 0;) {
      const auto [first, last] = blocks[b];
      std::string only;
      if (first == last && is_project_include(lines[first], &only) &&
          only == own && blocks.size() > 1) {
        continue;  // the lone own-header line stays its own block
      }
      insert_at = last + 1;
      found = true;
      break;
    }
    std::vector<std::string> newlines;
    for (const std::string& hdr : add) {
      newlines.push_back("#include \"" + IncludeSpelling(hdr) + "\"");
    }
    if (!found) {
      // No project block: after the last include line of any kind, or
      // after the guard's #define in an include-less header.
      size_t after = 0;
      bool have = false;
      for (size_t i = 0; i < lines.size(); ++i) {
        if (StartsWith(Trim(lines[i]), "#include") ||
            StartsWith(Trim(lines[i]), "#define " + ExpectedGuard(f.rel))) {
          after = i + 1;
          have = true;
        }
      }
      if (!have) after = 0;
      newlines.insert(newlines.begin(), "");
      lines.insert(lines.begin() + static_cast<long>(after),
                   newlines.begin(), newlines.end());
    } else {
      lines.insert(lines.begin() + static_cast<long>(insert_at),
                   newlines.begin(), newlines.end());
    }
  }

  // Re-sort every project block (own header pinned first in the first).
  {
    std::vector<std::pair<size_t, size_t>> blocks;
    std::string p;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!is_project_include(lines[i], &p)) continue;
      if (!blocks.empty() && blocks.back().second + 1 == i) {
        blocks.back().second = i;
      } else {
        blocks.emplace_back(i, i);
      }
    }
    const std::string own = OwnHeaderPath(f);
    for (size_t b = 0; b < blocks.size(); ++b) {
      const auto [first, last] = blocks[b];
      std::vector<std::string> blk(lines.begin() + static_cast<long>(first),
                                   lines.begin() + static_cast<long>(last) +
                                       1);
      std::sort(blk.begin(), blk.end(),
                [&](const std::string& x, const std::string& y) {
                  std::string px, py;
                  is_project_include(x, &px);
                  is_project_include(y, &py);
                  if (b == 0 && !own.empty()) {
                    if (px == own) return py != own;
                    if (py == own) return false;
                  }
                  return px < py;
                });
      blk.erase(std::unique(blk.begin(), blk.end()), blk.end());
      lines.erase(lines.begin() + static_cast<long>(first),
                  lines.begin() + static_cast<long>(last) + 1);
      lines.insert(lines.begin() + static_cast<long>(first), blk.begin(),
                   blk.end());
    }
  }
  return lines != before;
}

}  // namespace

size_t ApplyFixes(const std::vector<SourceFile>& files,
                  const fs::path& root) {
  std::map<std::string, std::set<std::string>> add_include;
  std::set<std::string> resort;
  std::set<std::string> add_guard;
  for (const Finding& v : Violations()) {
    if (v.rule == "transitive-include" && !v.fix_path.empty()) {
      add_include[v.file].insert(v.fix_path);
    } else if (v.rule == "include-order") {
      resort.insert(v.file);
    } else if (v.rule == "include-guard") {
      add_guard.insert(v.file);
    }
  }
  size_t fixed = 0;
  for (const SourceFile& f : files) {
    const bool want = add_include.count(f.rel) > 0 ||
                      resort.count(f.rel) > 0 || add_guard.count(f.rel) > 0;
    if (!want) continue;
    std::vector<std::string> lines = f.lines;
    if (!FixFileLines(f, add_include[f.rel], add_guard.count(f.rel) > 0,
                      root, lines)) {
      continue;
    }
    std::ofstream out(root / f.rel);
    for (const std::string& line : lines) out << line << "\n";
    ++fixed;
  }
  return fixed;
}

}  // namespace gnndm_lint
