// gnndm_train — fully configurable end-to-end training CLI: every data
// management knob the library exposes, on one command line.
//
//   $ gnndm_train --dataset=reddit_s --model=gcn --batch_size=512
//             --fanouts=25,10 --transfer=zero-copy --pipeline=bp-dt
//             --cache=presample --cache_ratio=0.2 --epochs=20
//
// Distributed mode partitions the graph and trains over simulated
// workers:
//
//   $ gnndm_train --dataset=products_s --workers=4 --partitioner=metis-vet
//
// Datasets can also come from a file produced by gnndm_datagen:
//
//   $ gnndm_train --dataset_file=my.gnndm
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/flight_recorder.h"
#include "common/parallel_for.h"
#include "common/telemetry.h"
#include "core/attribution.h"
#include "core/full_batch.h"
#include "core/trainer.h"
#include "dist/dist_trainer.h"
#include "graph/dataset.h"
#include "graph/io.h"
#include "nn/checkpoint.h"
#include "partition/edge_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/metis_partitioner.h"
#include "partition/partitioner.h"
#include "partition/stream_partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/simd.h"
#include "transfer/pipeline.h"

namespace gnndm {
namespace {

std::vector<HopSpec> ParseHops(const Flags& flags) {
  std::vector<HopSpec> hops;
  const double rate = flags.GetDouble("rate", 0.0);
  const std::string fanouts = flags.GetString("fanouts", "25,10");
  if (flags.Has("hybrid")) {
    // --hybrid=<fanout>,<rate>,<threshold>, applied at every hop; the
    // number of hops follows --layers (default 2).
    const auto layers = static_cast<uint32_t>(flags.GetInt("layers", 2));
    HopSpec spec = HopSpec::Hybrid(
        static_cast<uint32_t>(flags.GetInt("hybrid_fanout", 16)),
        flags.GetDouble("hybrid_rate", 0.3),
        static_cast<uint32_t>(flags.GetInt("hybrid_threshold", 32)));
    hops.assign(layers, spec);
  } else if (rate > 0.0) {
    const auto layers = static_cast<uint32_t>(flags.GetInt("layers", 2));
    hops.assign(layers, HopSpec::Rate(rate));
  } else {
    size_t start = 0;
    while (start <= fanouts.size()) {
      size_t comma = fanouts.find(',', start);
      std::string token = fanouts.substr(
          start,
          comma == std::string::npos ? std::string::npos : comma - start);
      if (!token.empty()) {
        hops.push_back(HopSpec::Fanout(
            static_cast<uint32_t>(std::strtoul(token.c_str(), nullptr, 10))));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return hops;
}

std::unique_ptr<Partitioner> MakePartitioner(const std::string& name) {
  if (name == "hash") return std::make_unique<HashPartitioner>();
  if (name == "edge-hash") return std::make_unique<EdgeHashPartitioner>();
  if (name == "metis-v") {
    return std::make_unique<MetisPartitioner>(MetisMode::kV);
  }
  if (name == "metis-ve") {
    return std::make_unique<MetisPartitioner>(MetisMode::kVE);
  }
  if (name == "metis-vet") {
    return std::make_unique<MetisPartitioner>(MetisMode::kVET);
  }
  if (name == "stream-v") return std::make_unique<StreamVPartitioner>(2);
  if (name == "stream-b") return std::make_unique<StreamBPartitioner>();
  return nullptr;
}

PipelineMode ParsePipeline(const std::string& name) {
  if (name == "bp") return PipelineMode::kOverlapBp;
  if (name == "bp-dt") return PipelineMode::kOverlapBpDt;
  return PipelineMode::kNone;
}

/// The --report output: per-epoch stall attribution plus the
/// steady-state bottleneck verdict.
void PrintAttributionReport(const std::vector<EpochAttribution>& history) {
  std::printf("%s", AttributionReport(history).ToAscii().c_str());
  std::printf("bottleneck verdict: %s\n",
              BottleneckName(SteadyStateVerdict(history)));
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "gnndm_train: end-to-end GNN training with configurable data "
        "management.\n"
        "  --dataset=NAME | --dataset_file=PATH\n"
        "  --model=gcn|graphsage|mlp  --hidden=N  --layers=N  --lr=F\n"
        "  --batch_size=N | --adaptive (with --adaptive_initial/max)\n"
        "  --fanouts=a,b,... | --rate=F | --hybrid\n"
        "  --selector=random|cluster\n"
        "  --transfer=extract-load|zero-copy|hybrid  "
        "--pipeline=none|bp|bp-dt\n"
        "  --cache=none|degree|presample  --cache_ratio=F\n"
        "  --loader-workers=N  batch-producer workers (0 = prepare\n"
        "                      inline; output is byte-identical at any N)\n"
        "  --queue-depth=N     prefetch window of the async source\n"
        "  --async             legacy: force one producer worker\n"
        "  --save=FILE.gnck  --load=FILE.gnck\n"
        "  --workers=N  --partitioner=hash|metis-v|metis-ve|metis-vet|"
        "stream-v|stream-b|edge-hash\n"
        "  --full_batch  --epochs=N  --seed=N\n"
        "  --threads=N   compute threads for the parallel kernels\n"
        "                (0 = GNNDM_THREADS env or hardware default;\n"
        "                 results are byte-identical at any value)\n"
        "  --simd=auto|scalar|avx2|neon  kernel instruction-set tier\n"
        "                (auto = best supported, or GNNDM_SIMD env;\n"
        "                 results are byte-identical on every tier)\n"
        "  --trace-out=FILE.json    Chrome trace (chrome://tracing or\n"
        "                           ui.perfetto.dev) of all pipeline spans\n"
        "  --metrics-out=FILE.json  metrics snapshot (counters/histograms)\n"
        "  --telemetry=0            disable all telemetry (output is\n"
        "                           byte-identical either way)\n"
        "  --report                 print the per-epoch stall-attribution\n"
        "                           table and the steady-state bottleneck\n"
        "                           verdict after training\n"
        "  --postmortem=FILE.json   arm the crash flight recorder: a fatal\n"
        "                           signal or failed GNNDM_CHECK dumps the\n"
        "                           recent-event rings + metrics here\n"
        "                           (also via the GNNDM_POSTMORTEM env)\n");
    return 0;
  }

  // --- Telemetry. Tracing only observes: training output is
  // byte-identical with any combination of these flags. ---
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  telemetry::SetEnabled(flags.GetBool("telemetry", true));
  if (!trace_out.empty()) telemetry::Tracer::Get().Start();

  // --- Crash flight recorder. Recording is always on (lock- and
  // allocation-free); a dump target arms the post-mortem paths. ---
  if (flags.Has("postmortem")) {
    flight_recorder::SetPostMortemPath(flags.GetString("postmortem", ""));
  }
  if (!flight_recorder::PostMortemPath().empty()) {
    flight_recorder::InstallCrashHandlers();
  }

  // Apply kernel threading before any compute (full-batch construction
  // gathers features in its constructor).
  if (flags.Has("threads")) {
    SetComputeThreads(static_cast<size_t>(flags.GetInt("threads", 0)));
  }

  // Pin the SIMD tier before any kernel runs. Purely a speed knob: every
  // tier produces byte-identical results (fixed 8-lane reduction order).
  if (Status simd_status =
          SetSimdTierByName(flags.GetString("simd", "auto"));
      !simd_status.ok()) {
    std::fprintf(stderr, "--simd: %s\n", simd_status.ToString().c_str());
    return 2;
  }

  // --- Dataset ---
  Result<Dataset> dataset = flags.Has("dataset_file")
                                ? LoadDatasetFile(flags.GetString(
                                      "dataset_file", ""))
                                : LoadDataset(
                                      flags.GetString("dataset", "reddit_s"),
                                      flags.GetInt("seed", 42));
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // --- Config ---
  TrainerConfig config;
  config.model = flags.GetString("model", "gcn");
  config.hidden_dim = static_cast<size_t>(flags.GetInt("hidden", 32));
  config.num_conv_layers =
      static_cast<uint32_t>(flags.GetInt("layers", 2));
  config.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 0.01));
  config.batch_size =
      static_cast<uint32_t>(flags.GetInt("batch_size", 512));
  config.hops = ParseHops(flags);
  config.batch_selector = flags.GetString("selector", "random");
  config.adaptive_batch = flags.GetBool("adaptive", false);
  config.adaptive_initial =
      static_cast<uint32_t>(flags.GetInt("adaptive_initial", 64));
  config.adaptive_max =
      static_cast<uint32_t>(flags.GetInt("adaptive_max", 1024));
  config.transfer = flags.GetString("transfer", "extract-load");
  config.pipeline = ParsePipeline(flags.GetString("pipeline", "none"));
  config.cache_policy = flags.GetString("cache", "none");
  config.cache_ratio = flags.GetDouble("cache_ratio", 0.0);
  config.async_batch_loading = flags.GetBool("async", false);
  config.loader_workers =
      static_cast<size_t>(flags.GetInt("loader-workers", 0));
  config.async_queue_depth = static_cast<size_t>(flags.GetInt(
      "queue-depth", static_cast<int64_t>(config.async_queue_depth)));
  config.p3_feature_parallel = flags.GetBool("p3", false);
  config.num_threads = static_cast<size_t>(flags.GetInt("threads", 0));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (config.hops.size() != config.num_conv_layers &&
      config.model != "mlp") {
    config.num_conv_layers =
        static_cast<uint32_t>(config.hops.size());
  }

  const auto epochs = static_cast<uint32_t>(flags.GetInt("epochs", 10));
  const auto workers = static_cast<uint32_t>(flags.GetInt("workers", 1));

  std::printf("dataset=%s |V|=%u |E|=%llu classes=%u train=%zu\n",
              dataset->name.c_str(), dataset->graph.num_vertices(),
              static_cast<unsigned long long>(dataset->graph.num_edges()),
              dataset->num_classes, dataset->split.train.size());

  // --- Train ---
  if (flags.GetBool("full_batch", false)) {
    FullBatchTrainer trainer(*dataset, config);
    for (uint32_t e = 0; e < epochs; ++e) {
      EpochStats stats = trainer.TrainEpoch();
      std::printf("epoch %3u  loss %.4f  val %.3f  %.4fs\n", e,
                  stats.train_loss, trainer.Evaluate(dataset->split.val),
                  stats.epoch_seconds);
    }
    std::printf("test accuracy %.3f  peak device memory %.1f MB\n",
                trainer.Evaluate(dataset->split.test),
                trainer.PeakMemoryBytes() / 1e6);
    if (flags.GetBool("report", false)) {
      std::printf(
          "(--report: full-batch mode has no per-batch pipeline, no stall "
          "attribution)\n");
    }
  } else if (workers > 1) {
    auto partitioner =
        MakePartitioner(flags.GetString("partitioner", "metis-vet"));
    if (partitioner == nullptr) {
      std::fprintf(stderr, "error: unknown partitioner\n");
      return 1;
    }
    PartitionResult partition = partitioner->Partition(
        {dataset->graph, dataset->split}, workers, config.seed);
    std::printf("partitioner=%s  cut=%llu  partition_time=%.3fs\n",
                partitioner->name().c_str(),
                static_cast<unsigned long long>(
                    partition.EdgeCut(dataset->graph)),
                partition.seconds);
    DistTrainer trainer(*dataset, partition, config);
    for (uint32_t e = 0; e < epochs; ++e) {
      DistEpochStats stats = trainer.TrainEpoch();
      std::printf("epoch %3u  loss %.4f  val %.3f  %.4fs\n", e,
                  stats.train_loss, trainer.Evaluate(dataset->split.val),
                  stats.epoch_seconds);
    }
    std::printf("test accuracy %.3f\n",
                trainer.Evaluate(dataset->split.test));
    if (flags.GetBool("report", false)) {
      PrintAttributionReport(trainer.attribution_history());
    }
  } else {
    Trainer trainer(*dataset, config);
    if (flags.Has("load")) {
      Status status =
          LoadCheckpoint(trainer.model(), flags.GetString("load", ""));
      if (!status.ok()) {
        std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("restored checkpoint\n");
    }
    for (uint32_t e = 0; e < epochs; ++e) {
      EpochStats stats = trainer.TrainEpoch();
      std::printf(
          "epoch %3u  loss %.4f  val %.3f  %.4fs  (bp %.0f%% dt %.0f%% "
          "nn %.0f%%, %.2f MB moved)\n",
          e, stats.train_loss, trainer.Evaluate(dataset->split.val),
          stats.epoch_seconds,
          100.0 * stats.batch_prep_seconds /
              (stats.batch_prep_seconds + stats.extract_seconds +
               stats.load_seconds + stats.nn_seconds),
          100.0 * (stats.extract_seconds + stats.load_seconds) /
              (stats.batch_prep_seconds + stats.extract_seconds +
               stats.load_seconds + stats.nn_seconds),
          100.0 * stats.nn_seconds /
              (stats.batch_prep_seconds + stats.extract_seconds +
               stats.load_seconds + stats.nn_seconds),
          stats.bytes_transferred / 1e6);
    }
    std::printf("test accuracy %.3f\n",
                trainer.Evaluate(dataset->split.test));
    if (flags.GetBool("report", false)) {
      PrintAttributionReport(trainer.attribution_history());
    }
    if (flags.Has("save")) {
      Status status =
          SaveCheckpoint(trainer.model(), flags.GetString("save", ""));
      if (!status.ok()) {
        std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("checkpoint written to %s\n",
                  flags.GetString("save", "").c_str());
    }
  }

  // --- Telemetry artifacts (after all training output, so the training
  // lines above stay diffable against an untraced run). ---
  if (!trace_out.empty()) {
    telemetry::Tracer& tracer = telemetry::Tracer::Get();
    tracer.Stop();
    using telemetry::ClockDomain;
    std::printf(
        "trace stage sums (virtual): bp %.6fs  extract %.6fs  load %.6fs  "
        "nn %.6fs\n",
        tracer.SpanSeconds("trainer.bp", ClockDomain::kVirtual),
        tracer.SpanSeconds("trainer.extract", ClockDomain::kVirtual),
        tracer.SpanSeconds("trainer.load", ClockDomain::kVirtual),
        tracer.SpanSeconds("trainer.nn", ClockDomain::kVirtual));
    Status status = tracer.WriteChromeTrace(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events)\n", trace_out.c_str(),
                tracer.Snapshot().size());
  }
  if (!metrics_out.empty()) {
    const std::string json = telemetry::MetricsRegistry::Get().ToJson();
    Status lint = telemetry::JsonLint(json);
    if (!lint.ok()) {
      std::fprintf(stderr, "error: %s\n", lint.ToString().c_str());
      return 1;
    }
    std::ofstream out(metrics_out, std::ios::trunc);
    out << json;
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty() || !metrics_out.empty()) {
    std::printf(
        "%s",
        telemetry::MetricsRegistry::Get().ToTable().ToAscii().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gnndm

int main(int argc, char** argv) { return gnndm::Main(argc, argv); }
