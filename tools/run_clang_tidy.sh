#!/usr/bin/env bash
# Runs clang-tidy (config: /.clang-tidy) over every first-party
# translation unit, using the compile commands of an existing build tree.
#
# Usage: tools/run_clang_tidy.sh [build_dir] [-- extra clang-tidy args]
#
#   build_dir  defaults to ./build; must contain compile_commands.json
#              (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
# Exits 0 if clang-tidy is clean, 1 on findings, 2 if the environment is
# not set up (missing binary or compilation database) — callers that
# treat the check as advisory (e.g. a dev container without clang) can
# distinguish "dirty" from "unavailable".
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
[ "${1:-}" = "--" ] && shift

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" > /dev/null 2>&1; then
  echo "run_clang_tidy: '$tidy_bin' not found; skipping (advisory)." >&2
  exit 2
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in $build_dir." >&2
  echo "  configure with: cmake -B $build_dir -S $repo_root" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

cd "$repo_root"
files=$(find src tests bench tools -name '*.cc' | sort)
status=0
for f in $files; do
  "$tidy_bin" -p "$build_dir" --quiet "$@" "$f" || status=1
done
exit $status
