#!/usr/bin/env bash
# Pre-commit gate: run gnndm_lint when any C++ source is staged and
# gnndm_jsonlint on every staged .json file. Wire it up with:
#   ln -s ../../tools/pre_commit.sh .git/hooks/pre-commit
#
# The lint always analyzes the whole repo (the layering,
# transitive-include, and interprocedural effect passes are graph
# properties — a staged file can break a contract in an unstaged one),
# but it only runs at all when a staged file could affect it. A commit
# is rejected when it adds an unsuppressed finding — including the
# call-graph contracts (parallel-context, hot-transitive-alloc) — or
# leaves an orphan suppression (unused-suppression is itself a finding).
# GNNDM_BUILD_DIR overrides the build tree (default: ./build).
set -euo pipefail

REPO_ROOT="$(git rev-parse --show-toplevel)"
BUILD_DIR="${GNNDM_BUILD_DIR:-${REPO_ROOT}/build}"
cd "${REPO_ROOT}"

mapfile -t staged < <(git diff --cached --name-only --diff-filter=ACMR)
if [[ ${#staged[@]} -eq 0 ]]; then
  exit 0
fi

cpp_staged=()
json_staged=()
for f in "${staged[@]}"; do
  case "$f" in
    *.cc|*.h) cpp_staged+=("$f") ;;
    *.json) json_staged+=("$f") ;;
    tools/layers.txt) cpp_staged+=("$f") ;;  # manifest edits re-lint too
  esac
done

ensure_tool() {
  local target="$1" path="$2"
  if [[ ! -x "${path}" ]]; then
    if [[ -d "${BUILD_DIR}" ]]; then
      cmake --build "${BUILD_DIR}" --target "${target}" >/dev/null
    else
      echo "pre_commit: ${path} missing and no build dir at ${BUILD_DIR}" >&2
      echo "pre_commit: run: cmake -B build -S . && cmake --build build --target ${target}" >&2
      return 1
    fi
  fi
}

status=0

if [[ ${#cpp_staged[@]} -gt 0 ]]; then
  LINT="${BUILD_DIR}/tools/gnndm_lint"
  ensure_tool gnndm_lint "${LINT}" || exit 1
  if ! "${LINT}" "${REPO_ROOT}"; then
    echo "pre_commit: gnndm_lint failed (mechanical findings: ${LINT} --fix .;" >&2
    echo "  effect-contract findings print the call chain — fix the code or" >&2
    echo "  add 'gnndm-lint: suppress(<rule>): <why>' at the flagged line)" >&2
    status=1
  fi
fi

if [[ ${#json_staged[@]} -gt 0 ]]; then
  JSONLINT="${BUILD_DIR}/tools/gnndm_jsonlint"
  ensure_tool gnndm_jsonlint_cli "${JSONLINT}" || exit 1
  if ! "${JSONLINT}" "${json_staged[@]}"; then
    echo "pre_commit: gnndm_jsonlint failed on staged JSON" >&2
    status=1
  fi
fi

exit ${status}
