// gnndm_traceq — offline analyzer for the Chrome traces gnndm_train
// writes (--trace-out). Answers "where did the time go" without rerunning
// anything:
//
//   $ gnndm_traceq --trace=smoke_trace.json
//   $ gnndm_traceq --trace=smoke_trace.json --json=report.json --check
//
// Reports per-lane utilization (both clock domains), the critical path
// through the virtual span graph, the reorder-ring occupancy timeline,
// the top-k slowest spans, the Fig-2-style stage breakdown, and a
// bottleneck verdict. --check additionally enforces the critical-path
// invariants (path <= extent, path >= busiest lane) and exits nonzero if
// they fail. Exit codes: 0 ok, 1 unreadable/malformed trace, 2 empty
// trace, 3 --check invariant violation.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "core/attribution.h"

namespace gnndm {
namespace {

// --- Minimal JSON value parser -----------------------------------------
// The repo's JsonLint validates documents; this parser additionally
// materializes them. Scoped to what Chrome traces contain (objects,
// arrays, strings, numbers, bools, null); duplicate keys and trailing
// garbage are rejected.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double NumberOr(const std::string& key, double fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeWord(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Trace content is ASCII; decode BMP escapes bytewise enough
            // for key comparison and pass-through.
            if (pos_ + 4 > text_.size()) return false;
            out->append("\\u").append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (ConsumeWord("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (ConsumeWord("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (ConsumeWord("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }
  bool ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(begin, pos_ - begin).c_str(),
                              nullptr);
    return true;
  }
  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    if (Consume(']')) return true;
    for (;;) {
      JsonValue item;
      if (!ParseValue(&item)) return false;
      out->items.push_back(std::move(item));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }
  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      if (out->Find(key) != nullptr) return false;  // duplicate key
      out->fields.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Trace model --------------------------------------------------------

/// Tolerance for float round-trips through the trace (microsecond
/// timestamps printed as JSON numbers).
constexpr double kEps = 1e-6;

struct Span {
  std::string name;
  bool wall = false;  ///< pid 1 = wall clock, pid 2 = virtual clock
  int64_t tid = 0;
  double ts = 0.0;   ///< seconds
  double dur = 0.0;  ///< seconds
  int64_t batch = -1;
};

struct CounterSample {
  std::string name;
  double ts = 0.0;
  double value = 0.0;
};

struct TraceData {
  std::vector<Span> spans;
  std::vector<CounterSample> counters;
  /// Lane names from "M" thread_name metadata, keyed by (pid, tid).
  std::map<std::pair<int64_t, int64_t>, std::string> lane_names;
  size_t events = 0;
};

bool LoadTrace(const std::string& path, TraceData* out,
               std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    *error = "cannot open " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  JsonValue root;
  if (!JsonParser(text).Parse(&root) ||
      root.kind != JsonValue::Kind::kObject) {
    *error = "malformed JSON in " + path;
    return false;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    *error = "no traceEvents array in " + path;
    return false;
  }
  for (const JsonValue& e : events->items) {
    if (e.kind != JsonValue::Kind::kObject) {
      *error = "non-object trace event";
      return false;
    }
    ++out->events;
    const std::string ph = e.StringOr("ph", "");
    const auto pid = static_cast<int64_t>(e.NumberOr("pid", 0));
    const auto tid = static_cast<int64_t>(e.NumberOr("tid", 0));
    const JsonValue* args = e.Find("args");
    if (ph == "M") {
      if (args != nullptr &&
          (e.StringOr("name", "") == "thread_name" ||
           e.StringOr("name", "") == "process_name")) {
        const int64_t key_tid =
            e.StringOr("name", "") == "process_name" ? -1 : tid;
        out->lane_names[{pid, key_tid}] = args->StringOr("name", "");
      }
      continue;
    }
    if (ph == "X") {
      Span span;
      span.name = e.StringOr("name", "");
      span.wall = pid == 1;
      span.tid = tid;
      span.ts = e.NumberOr("ts", 0.0) / 1e6;
      span.dur = e.NumberOr("dur", 0.0) / 1e6;
      if (args != nullptr) {
        span.batch = static_cast<int64_t>(args->NumberOr("batch", -1.0));
      }
      out->spans.push_back(std::move(span));
      continue;
    }
    if (ph == "C") {
      CounterSample sample;
      sample.name = e.StringOr("name", "");
      sample.ts = e.NumberOr("ts", 0.0) / 1e6;
      if (args != nullptr) sample.value = args->NumberOr("value", 0.0);
      out->counters.push_back(std::move(sample));
      continue;
    }
    // Other phases (B/E, instant, ...) are not produced by our tracer;
    // ignore rather than fail so hand-edited traces still load.
  }
  return true;
}

// --- Analyses -----------------------------------------------------------

struct LaneStats {
  int64_t tid = 0;
  std::string name;
  double busy = 0.0;
  size_t spans = 0;
};

struct DomainStats {
  double begin = 0.0;
  double end = 0.0;
  std::vector<LaneStats> lanes;
  double extent() const { return std::max(0.0, end - begin); }
};

DomainStats LaneUtilization(const TraceData& trace, bool wall) {
  DomainStats out;
  std::map<int64_t, LaneStats> lanes;
  bool first = true;
  for (const Span& s : trace.spans) {
    if (s.wall != wall) continue;
    LaneStats& lane = lanes[s.tid];
    lane.tid = s.tid;
    lane.busy += s.dur;
    ++lane.spans;
    if (first || s.ts < out.begin) out.begin = s.ts;
    if (first || s.ts + s.dur > out.end) out.end = s.ts + s.dur;
    first = false;
  }
  const int64_t pid = wall ? 1 : 2;
  for (auto& [tid, lane] : lanes) {
    auto it = trace.lane_names.find({pid, tid});
    lane.name = it != trace.lane_names.end()
                    ? it->second
                    : (wall ? "thread " : "lane ") + std::to_string(tid);
    out.lanes.push_back(lane);
  }
  return out;
}

/// Longest path through the virtual span DAG. Edges: consecutive spans on
/// the same lane (a serial resource) and same-batch cross-lane pairs —
/// both only when the successor starts at or after the predecessor's end
/// (within kEps), so every path is a chain of non-overlapping spans and
/// its length is bounded by the domain extent. Each lane's full busy time
/// is itself a path, giving the lower bound the --check invariant uses.
struct CriticalPath {
  double seconds = 0.0;
  size_t spans = 0;
};

CriticalPath VirtualCriticalPath(const TraceData& trace) {
  struct Node {
    const Span* span;
    double dp = 0.0;
    size_t hops = 1;
  };
  std::vector<Node> nodes;
  for (const Span& s : trace.spans) {
    if (!s.wall) nodes.push_back({&s, s.dur, 1});
  }
  std::sort(nodes.begin(), nodes.end(), [](const Node& a, const Node& b) {
    if (a.span->ts != b.span->ts) return a.span->ts < b.span->ts;
    return a.span->tid < b.span->tid;
  });
  // Index nodes by lane and by batch for the two edge families.
  std::map<int64_t, std::vector<size_t>> by_lane;
  std::map<int64_t, std::vector<size_t>> by_batch;
  for (size_t i = 0; i < nodes.size(); ++i) {
    by_lane[nodes[i].span->tid].push_back(i);
    if (nodes[i].span->batch >= 0) {
      by_batch[nodes[i].span->batch].push_back(i);
    }
  }
  auto relax = [&nodes](size_t from, size_t to) {
    const Span& a = *nodes[from].span;
    const Span& b = *nodes[to].span;
    if (b.ts + kEps < a.ts + a.dur) return;  // overlapping: no edge
    if (nodes[from].dp + b.dur > nodes[to].dp) {
      nodes[to].dp = nodes[from].dp + b.dur;
      nodes[to].hops = nodes[from].hops + 1;
    }
  };
  // Nodes are in global ts order, so every relax sees a finalized
  // predecessor (edges always point forward in time).
  for (const auto& [lane, idx] : by_lane) {
    for (size_t i = 1; i < idx.size(); ++i) relax(idx[i - 1], idx[i]);
  }
  for (const auto& [batch, idx] : by_batch) {
    for (size_t j = 1; j < idx.size(); ++j) {
      for (size_t i = 0; i < j; ++i) relax(idx[i], idx[j]);
    }
  }
  CriticalPath out;
  for (const Node& n : nodes) {
    if (n.dp > out.seconds) {
      out.seconds = n.dp;
      out.spans = n.hops;
    }
  }
  return out;
}

/// Sum of virtual span durations whose name equals `name`.
double VirtualSum(const TraceData& trace, const char* name) {
  double sum = 0.0;
  for (const Span& s : trace.spans) {
    if (!s.wall && s.name == name) sum += s.dur;
  }
  return sum;
}

/// Sum of wall span durations whose name equals `name`.
double WallSum(const TraceData& trace, const char* name) {
  double sum = 0.0;
  for (const Span& s : trace.spans) {
    if (s.wall && s.name == name) sum += s.dur;
  }
  return sum;
}

struct OccupancyStats {
  size_t samples = 0;
  double max = 0.0;
  double mean = 0.0;
};

OccupancyStats ReorderOccupancy(const TraceData& trace) {
  OccupancyStats out;
  double sum = 0.0;
  for (const CounterSample& c : trace.counters) {
    if (c.name != "loader.reorder_occupancy") continue;
    ++out.samples;
    sum += c.value;
    out.max = std::max(out.max, c.value);
  }
  if (out.samples > 0) out.mean = sum / static_cast<double>(out.samples);
  return out;
}

/// The trace-side bottleneck verdict, mirroring AttributeEpoch's logic
/// with what the trace records: virtual stage sums for the argmax, wall
/// loader spans for the starvation and sample-vs-gather refinements.
Bottleneck TraceVerdict(const TraceData& trace, double wall_extent) {
  const double prep = VirtualSum(trace, "trainer.bp");
  const double transfer = VirtualSum(trace, "trainer.extract") +
                          VirtualSum(trace, "trainer.load");
  const double compute = VirtualSum(trace, "trainer.nn");
  const double consumer_wait = WallSum(trace, "loader.consumer_wait");
  const bool has_producers = WallSum(trace, "loader.produce") > 0.0;
  if (has_producers && wall_extent > 0.0 &&
      consumer_wait > 0.5 * wall_extent) {
    return Bottleneck::kLoaderStarved;
  }
  if (prep >= transfer && prep >= compute) {
    return WallSum(trace, "loader.gather") > WallSum(trace, "loader.sample")
               ? Bottleneck::kGatherBound
               : Bottleneck::kSampleBound;
  }
  if (transfer >= compute) return Bottleneck::kTransferBound;
  return Bottleneck::kComputeBound;
}

// --- Report -------------------------------------------------------------

std::string JsonNum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // Keep JSON numeric (snprintf may emit inf/nan on degenerate input).
  for (const char* p = buf; *p != '\0'; ++p) {
    if (std::isalpha(static_cast<unsigned char>(*p)) && *p != 'e' &&
        *p != 'E') {
      return "0";
    }
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string LanesJson(const DomainStats& d) {
  std::string out = "[";
  for (size_t i = 0; i < d.lanes.size(); ++i) {
    const LaneStats& lane = d.lanes[i];
    if (i > 0) out += ", ";
    out += "{\"tid\": " + std::to_string(lane.tid) + ", \"name\": \"" +
           JsonEscape(lane.name) + "\", \"busy_seconds\": " +
           JsonNum(lane.busy) + ", \"utilization\": " +
           JsonNum(d.extent() > 0.0 ? lane.busy / d.extent() : 0.0) +
           ", \"spans\": " + std::to_string(lane.spans) + "}";
  }
  return out + "]";
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("help") || !flags.Has("trace")) {
    std::printf(
        "gnndm_traceq: offline analyzer for gnndm_train Chrome traces.\n"
        "  --trace=FILE.json  trace to analyze (required)\n"
        "  --json=FILE.json   also write the report as JSON\n"
        "  --top=N            slowest spans to list (default 10)\n"
        "  --check            enforce critical-path invariants (exit 3\n"
        "                     on violation)\n"
        "exit codes: 0 ok, 1 malformed trace, 2 empty trace, 3 check "
        "failed\n");
    return flags.Has("help") ? 0 : 1;
  }
  const std::string path = flags.GetString("trace", "");
  TraceData trace;
  std::string error;
  if (!LoadTrace(path, &trace, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (trace.spans.empty()) {
    std::fprintf(stderr, "error: %s contains no spans\n", path.c_str());
    return 2;
  }

  const DomainStats wall = LaneUtilization(trace, /*wall=*/true);
  const DomainStats virt = LaneUtilization(trace, /*wall=*/false);
  const CriticalPath critical = VirtualCriticalPath(trace);
  const OccupancyStats occupancy = ReorderOccupancy(trace);
  const Bottleneck verdict = TraceVerdict(trace, wall.extent());

  double max_lane_busy = 0.0;
  for (const LaneStats& lane : virt.lanes) {
    max_lane_busy = std::max(max_lane_busy, lane.busy);
  }
  const double tolerance = kEps * (1.0 + static_cast<double>(critical.spans));
  const bool path_le_extent =
      critical.seconds <= virt.extent() + tolerance;
  const bool path_ge_max_lane =
      critical.seconds >= max_lane_busy - tolerance;

  // --- Text report ---
  std::printf("trace %s: %zu events, %zu spans, %zu counter samples\n",
              path.c_str(), trace.events, trace.spans.size(),
              trace.counters.size());
  for (const bool is_wall : {true, false}) {
    const DomainStats& d = is_wall ? wall : virt;
    Table table(std::string(is_wall ? "wall" : "virtual") +
                " lane utilization (extent " +
                Table::Num(d.extent(), 6) + "s)");
    table.SetHeader({"lane", "name", "busy(s)", "util", "spans"});
    for (const LaneStats& lane : d.lanes) {
      table.AddRow({std::to_string(lane.tid), lane.name,
                    Table::Num(lane.busy, 6),
                    Table::Num(d.extent() > 0.0 ? lane.busy / d.extent()
                                                : 0.0,
                               3),
                    std::to_string(lane.spans)});
    }
    std::printf("%s", table.ToAscii().c_str());
  }
  std::printf(
      "critical path (virtual): %.6fs over %zu spans "
      "(extent %.6fs, busiest lane %.6fs)\n",
      critical.seconds, critical.spans, virt.extent(), max_lane_busy);

  {
    // Fig-2-style stage breakdown from the virtual spans.
    const double bp = VirtualSum(trace, "trainer.bp");
    const double extract = VirtualSum(trace, "trainer.extract");
    const double load = VirtualSum(trace, "trainer.load");
    const double nn = VirtualSum(trace, "trainer.nn");
    const double total = bp + extract + load + nn;
    Table table("stage breakdown (virtual seconds)");
    table.SetHeader({"stage", "seconds", "share"});
    const std::pair<const char*, double> stages[] = {
        {"batch preparation", bp},
        {"extract", extract},
        {"load", load},
        {"nn compute", nn}};
    for (const auto& [name, seconds] : stages) {
      table.AddRow({name, Table::Num(seconds, 6),
                    Table::Num(total > 0.0 ? seconds / total : 0.0, 3)});
    }
    std::printf("%s", table.ToAscii().c_str());
  }

  if (occupancy.samples > 0) {
    std::printf(
        "reorder-ring occupancy: %zu samples, mean %.2f, max %.0f\n",
        occupancy.samples, occupancy.mean, occupancy.max);
  }

  const auto top = static_cast<size_t>(flags.GetInt("top", 10));
  {
    std::vector<const Span*> slowest;
    slowest.reserve(trace.spans.size());
    for (const Span& s : trace.spans) slowest.push_back(&s);
    std::sort(slowest.begin(), slowest.end(),
              [](const Span* a, const Span* b) {
                if (a->dur != b->dur) return a->dur > b->dur;
                return a->ts < b->ts;
              });
    if (slowest.size() > top) slowest.resize(top);
    Table table("top " + std::to_string(slowest.size()) + " slowest spans");
    table.SetHeader({"name", "clock", "begin(s)", "dur(s)", "batch"});
    for (const Span* s : slowest) {
      table.AddRow({s->name, s->wall ? "wall" : "virtual",
                    Table::Num(s->ts, 6), Table::Num(s->dur, 6),
                    s->batch >= 0 ? std::to_string(s->batch) : "-"});
    }
    std::printf("%s", table.ToAscii().c_str());
  }
  std::printf("bottleneck verdict: %s\n", BottleneckName(verdict));
  if (!path_le_extent || !path_ge_max_lane) {
    std::printf("critical-path invariants: path<=extent %s, "
                "path>=busiest-lane %s\n",
                path_le_extent ? "ok" : "VIOLATED",
                path_ge_max_lane ? "ok" : "VIOLATED");
  }

  // --- JSON report ---
  if (flags.Has("json")) {
    std::string json = "{\"trace\": \"" + JsonEscape(path) + "\",\n";
    json += "\"events\": " + std::to_string(trace.events) +
            ", \"spans\": " + std::to_string(trace.spans.size()) +
            ", \"counter_samples\": " +
            std::to_string(trace.counters.size()) + ",\n";
    json += "\"wall\": {\"extent_seconds\": " + JsonNum(wall.extent()) +
            ", \"lanes\": " + LanesJson(wall) + "},\n";
    json += "\"virtual\": {\"extent_seconds\": " + JsonNum(virt.extent()) +
            ", \"lanes\": " + LanesJson(virt) +
            ", \"critical_path_seconds\": " + JsonNum(critical.seconds) +
            ", \"critical_path_spans\": " +
            std::to_string(critical.spans) + "},\n";
    json += "\"stage_breakdown\": {\"batch_prep\": " +
            JsonNum(VirtualSum(trace, "trainer.bp")) + ", \"extract\": " +
            JsonNum(VirtualSum(trace, "trainer.extract")) +
            ", \"load\": " + JsonNum(VirtualSum(trace, "trainer.load")) +
            ", \"nn\": " + JsonNum(VirtualSum(trace, "trainer.nn")) +
            "},\n";
    json += "\"reorder_occupancy\": {\"samples\": " +
            std::to_string(occupancy.samples) + ", \"mean\": " +
            JsonNum(occupancy.mean) + ", \"max\": " +
            JsonNum(occupancy.max) + "},\n";
    json += "\"verdict\": \"" + std::string(BottleneckName(verdict)) +
            "\",\n";
    json += "\"checks\": {\"critical_path_le_extent\": " +
            std::string(path_le_extent ? "true" : "false") +
            ", \"critical_path_ge_max_lane\": " +
            std::string(path_ge_max_lane ? "true" : "false") + "}}\n";
    if (Status lint = telemetry::JsonLint(json); !lint.ok()) {
      std::fprintf(stderr, "error: report JSON failed lint: %s\n",
                   lint.ToString().c_str());
      return 1;
    }
    const std::string out_path = flags.GetString("json", "");
    std::ofstream out(out_path, std::ios::trunc);
    out << json;
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }

  if (flags.GetBool("check", false) &&
      (!path_le_extent || !path_ge_max_lane)) {
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace gnndm

int main(int argc, char** argv) { return gnndm::Main(argc, argv); }
