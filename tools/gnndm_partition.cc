// gnndm_partition — partition a graph (from the registry, a dataset
// file, or an edge list) with any implemented method, report quality
// metrics, and optionally write the assignment.
//
//   $ gnndm_partition --dataset=products_s --method=metis-vet --parts=4
//             --out=assignment.txt
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "common/flags.h"
#include "graph/csr_graph.h"
#include "graph/dataset.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "partition/analyzer.h"
#include "partition/edge_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/metis_partitioner.h"
#include "partition/partitioner.h"
#include "partition/stream_partitioner.h"
#include "sampling/neighbor_sampler.h"

namespace gnndm {
namespace {

std::unique_ptr<Partitioner> MakeMethod(const std::string& name) {
  if (name == "hash") return std::make_unique<HashPartitioner>();
  if (name == "edge-hash") return std::make_unique<EdgeHashPartitioner>();
  if (name == "metis-v") {
    return std::make_unique<MetisPartitioner>(MetisMode::kV);
  }
  if (name == "metis-ve") {
    return std::make_unique<MetisPartitioner>(MetisMode::kVE);
  }
  if (name == "metis-vet") {
    return std::make_unique<MetisPartitioner>(MetisMode::kVET);
  }
  if (name == "stream-v") return std::make_unique<StreamVPartitioner>(2);
  if (name == "stream-b") return std::make_unique<StreamBPartitioner>();
  return nullptr;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto parts = static_cast<uint32_t>(flags.GetInt("parts", 4));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  Result<Dataset> dataset = flags.Has("dataset_file")
                                ? LoadDatasetFile(flags.GetString(
                                      "dataset_file", ""))
                                : LoadDataset(
                                      flags.GetString("dataset",
                                                      "products_s"),
                                      seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  auto method = MakeMethod(flags.GetString("method", "metis-vet"));
  if (method == nullptr) {
    std::fprintf(stderr,
                 "error: unknown method (hash|edge-hash|metis-v|metis-ve|"
                 "metis-vet|stream-v|stream-b)\n");
    return 1;
  }

  PartitionResult partition =
      method->Partition({dataset->graph, dataset->split}, parts, seed);
  StorageReport storage = AnalyzeStorage(dataset->graph, partition,
                                         dataset->features.dim() * 4);
  NeighborSampler sampler = NeighborSampler::WithFanouts({25, 10});
  AnalyzerOptions options;
  options.feature_bytes = dataset->features.dim() * 4;
  PartitionLoadReport load = AnalyzePartition(
      dataset->graph, dataset->split, partition, sampler, options);

  std::printf("method=%s parts=%u time=%.3fs\n", method->name().c_str(),
              parts, partition.seconds);
  std::printf("edge_cut=%llu (%.1f%% of edges)\n",
              static_cast<unsigned long long>(
                  partition.EdgeCut(dataset->graph)),
              200.0 * partition.EdgeCut(dataset->graph) /
                  dataset->graph.num_edges());
  std::printf("replication_factor=%.2f\n", storage.replication_factor);
  std::printf("comp_imbalance=%.3f comm_imbalance=%.3f comm_total=%.2fMB\n",
              load.ComputationImbalance(), load.CommunicationImbalance(),
              load.TotalCommunication() / 1e6);
  for (uint32_t p = 0; p < parts; ++p) {
    std::printf(
        "  machine %u: owned=%llu halo=%llu train=%zu comp=%llu "
        "out=%.2fMB\n",
        p,
        static_cast<unsigned long long>(
            storage.machines[p].owned_vertices),
        static_cast<unsigned long long>(storage.machines[p].halo_vertices),
        partition.Filter(dataset->split.train, p).size(),
        static_cast<unsigned long long>(
            load.machines[p].TotalComputation()),
        load.machines[p].bytes_out / 1e6);
  }

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    file << "# vertex partition (" << method->name() << ", " << parts
         << " parts)\n";
    for (VertexId v = 0; v < partition.assignment.size(); ++v) {
      file << v << " " << partition.assignment[v] << "\n";
    }
    std::printf("assignment written to %s\n", out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gnndm

int main(int argc, char** argv) { return gnndm::Main(argc, argv); }
