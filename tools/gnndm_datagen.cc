// gnndm_datagen — generate a synthetic dataset (or just a graph) and
// save it, so expensive generation runs once and experiments share one
// input.
//
//   $ gnndm_datagen --dataset=reddit_s --out=reddit.gnndm
//   $ gnndm_datagen --generator=rmat --vertices=100000 --edges=1000000
//             --out=web.el
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "graph/csr_graph.h"
#include "graph/dataset.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"

namespace gnndm {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: gnndm_datagen --dataset=NAME --out=FILE.gnndm\n"
                 "       gnndm_datagen --generator=rmat|er|ba|community "
                 "--vertices=N --edges=M --out=FILE.el\n");
    return 1;
  }
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  if (flags.Has("generator")) {
    const std::string generator = flags.GetString("generator", "rmat");
    const auto n =
        static_cast<VertexId>(flags.GetInt("vertices", 10000));
    const auto m = static_cast<EdgeId>(flags.GetInt("edges", 100000));
    CsrGraph graph;
    if (generator == "rmat") {
      graph = GenerateRmat(n, m, seed);
    } else if (generator == "er") {
      graph = GenerateErdosRenyi(n, m, seed);
    } else if (generator == "ba") {
      graph = GenerateBarabasiAlbert(
          n, static_cast<uint32_t>(flags.GetInt("edges_per_vertex", 4)),
          seed);
    } else if (generator == "community") {
      graph = GeneratePowerLawCommunity(
                  n, static_cast<uint32_t>(flags.GetInt("communities", 8)),
                  flags.GetDouble("intra_degree", 12.0),
                  flags.GetDouble("inter_degree", 3.0), seed)
                  .graph;
    } else {
      std::fprintf(stderr, "error: unknown generator '%s'\n",
                   generator.c_str());
      return 1;
    }
    Status status = SaveEdgeList(graph, out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: |V|=%u |E|=%llu avg_degree=%.1f gini=%.3f\n",
                out.c_str(), graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()),
                graph.AverageDegree(), DegreeGini(graph));
    return 0;
  }

  Result<Dataset> dataset =
      LoadDataset(flags.GetString("dataset", "reddit_s"), seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Status status = SaveDataset(*dataset, out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: %s |V|=%u |E|=%llu dim=%u classes=%u train/val/test="
      "%zu/%zu/%zu\n",
      out.c_str(), dataset->name.c_str(), dataset->graph.num_vertices(),
      static_cast<unsigned long long>(dataset->graph.num_edges()),
      dataset->features.dim(), dataset->num_classes,
      dataset->split.train.size(), dataset->split.val.size(),
      dataset->split.test.size());
  return 0;
}

}  // namespace
}  // namespace gnndm

int main(int argc, char** argv) { return gnndm::Main(argc, argv); }
