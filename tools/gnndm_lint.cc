// gnndm_lint — repo-specific static analysis, registered as a ctest so a
// violation fails the build. Usage:
//
//   $ gnndm_lint <repo_root> [--graph-json=<path>] [--graph-dot=<path>]
//                            [--fix]
//   $ gnndm_lint --fixture <file>...
//
// Flags:
//   --graph-json=P   write the module dependency graph (modules, layers,
//                    include edges with counts) as JSON to P
//   --graph-dot=P    write the same graph as Graphviz DOT, one cluster
//                    rank per layer, to P
//   --fix            apply mechanical fixes in place (missing include
//                    guard, missing direct include, include ordering),
//                    then re-analyze and report what remains; running
//                    --fix twice is a no-op (enforced by ctest)
//   --fixture F...   lint the given files in isolation as if they lived
//                    at src/lint_fixture/<basename>, print findings to
//                    stdout, and exit 0 — the golden-file harness for
//                    tests/lint_fixtures/
//
// This is a *token-based* analyzer, not a line-regex scanner: every file
// is lexed (line/block comments, string/char literals, and raw strings
// handled correctly), so a banned construct mentioned in prose or inside
// a string literal never trips a rule, and a real one can never hide
// behind creative spacing. On top of the token stream sits a scope
// scanner that classifies every brace (namespace / type / function /
// lambda / loop / control / initializer), tracks ParallelFor call
// extents, and attaches `// gnndm-hot` annotations to the function they
// precede — so rules can ask "is this token inside a loop in a hot
// function?" rather than pattern-matching lines. A second, repo-level
// pass parses every #include, assigns each file to a module, and checks
// the module DAG against the committed layer manifest tools/layers.txt.
//
// Suppressions. Any rule can be suppressed at a specific line with
//
//   // gnndm-lint: suppress(<rule-id>): <justification>
//
// placed on the offending line or the line above. The justification text
// is mandatory (an empty one is itself a violation, `bad-suppression`),
// and a suppression that matches no finding is reported as
// `unused-suppression` so escapes cannot rot in place. The pre-existing
// shorthand markers `serial-ok: <reason>`, `timer-ok: <reason>` and
// `batch-plane-ok: <reason>` are equivalent to suppressing their rule.
//
// Rule catalogue (see DESIGN.md §11 for the full rationale):
//   include-guard            .h files use GNNDM_<PATH>_H_ guards
//   raw-lock                 std::mutex & friends only inside the
//                            annotated wrappers (common/annotations.h)
//                            and the lock-order detector beneath them
//   raw-thread               std::thread in src/ only in the audited
//                            concurrency surfaces (ThreadPool, BatchSource)
//   batch-plane              batch production stays behind MakeBatchSource
//   assert-in-cc             assert() in non-test .cc — use GNNDM_[D]CHECK
//   deserialize-validate     binary parsers must Validate() what they read
//   raw-loop-kernel          kernel-shaped loops in src/tensor, src/nn go
//                            through ParallelFor
//   raw-timer                src/core|transfer|sampling time work via
//                            TRACE_SPAN, not ad-hoc WallTimers
//   unordered-iteration      no range-for / .begin() iteration over
//                            std::unordered_map/set in src/ — iteration
//                            order is implementation-defined and leaks
//                            straight into training output
//   raw-rng                  rand()/srand()/clock()/time()/random_device
//                            only inside src/common/rng.* — all other
//                            randomness flows from a seeded gnndm::Rng
//   simd-isolation           SIMD intrinsics, ISA headers, vector-ISA
//                            #if forks, and __builtin_cpu_supports only
//                            in src/tensor/simd* + src/common/
//                            cpu_features.* — everything else uses the
//                            dispatched SimdKernels table
//   thread-id-in-stats       std::this_thread::get_id() must not appear in
//                            src/: values derived from thread identity are
//                            schedule-dependent and poison stats/output
//   float-accum-in-parallel  no `scalar_float +=` inside a ParallelFor
//                            body: cross-chunk float accumulation order is
//                            nondeterministic; use a per-chunk partial and
//                            a deterministic reduction
//   layering                 every module lives in exactly one layer of
//                            tools/layers.txt and includes only strictly
//                            lower layers; cycles, upward includes and
//                            same-layer cross-module includes all fail
//   transitive-include       a name provided by exactly one project
//                            header must be included directly where it
//                            is used, not reached through a transitive
//                            include that a refactor can silently drop
//   include-order            each block of project includes is sorted
//                            (own header pinned first in a .cc); --fix
//                            rewrites the block
//   hot-path-alloc           no heap allocation (new, make_unique/shared,
//                            container construction, std::function
//                            materialization, unordered insertion) inside
//                            a ParallelFor extent or inside a loop of a
//                            function annotated `// gnndm-hot`; hoist
//                            into caller-owned scratch, don't suppress
//   metric-name-registry     GetCounter/GetGauge/GetHistogram call sites
//                            in src/ and bench/ name instruments through
//                            constants declared in src/common/
//                            telemetry_names.h — a raw string literal or
//                            an unregistered k-constant fails lint
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals
  kString,   // "..." and R"(...)" (text excludes quotes)
  kChar,     // '...'
  kComment,  // // and /* */ (text excludes the delimiters)
  kPunct,    // operators and punctuation, multi-char ops combined
};

struct Token {
  TokKind kind;
  std::string text;
  size_t line;  // 1-based line of the token's first character
};

/// Multi-character operators the rules care about, longest first.
const char* kMultiPunct[] = {"::", "+=", "-=", "->", "==", "!=", "<=",
                             ">=", "&&", "||", "<<", ">>", "++", "--"};

std::vector<Token> Lex(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0, line = 1;
  const size_t n = src.size();
  auto peek = [&](size_t off) -> char {
    return i + off < n ? src[i + off] : '\0';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.push_back({TokKind::kComment, src.substr(start, i - start), line});
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const size_t start_line = line;
      size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.push_back(
          {TokKind::kComment, src.substr(start, i - start), start_line});
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      size_t d0 = i + 2;
      size_t dp = d0;
      while (dp < n && src[dp] != '(') ++dp;
      const std::string delim = src.substr(d0, dp - d0);
      const std::string close = ")" + delim + "\"";
      const size_t start_line = line;
      size_t body = dp + 1;
      size_t end = src.find(close, body);
      if (end == std::string::npos) end = n;
      for (size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      out.push_back(
          {TokKind::kString, src.substr(body, end - body), start_line});
      i = std::min(n, end + close.size());
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t start = ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // unterminated; keep line count sane
        ++i;
      }
      out.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                     src.substr(start, i - start), line});
      if (i < n) ++i;  // closing quote
      continue;
    }
    // Identifier.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_')) {
        ++i;
      }
      out.push_back({TokKind::kIdent, src.substr(start, i - start), line});
      continue;
    }
    // Number (digits, hex, separators, exponents — precision is not
    // needed, only that the blob is one non-identifier token).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
            d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.push_back({TokKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation; combine the multi-char operators.
    bool matched = false;
    for (const char* op : kMultiPunct) {
      const size_t len = std::string(op).size();
      if (src.compare(i, len, op) == 0) {
        out.push_back({TokKind::kPunct, op, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// File model, findings, suppressions
// ---------------------------------------------------------------------------

/// One #include directive. `resolved` is the repo-relative path of the
/// named project header (empty for system/external includes).
struct IncludeDirective {
  size_t line = 0;    // 1-based
  std::string path;   // text between the delimiters, verbatim
  bool angled = false;
  std::string resolved;
};

/// Per-token scope flags, parallel to the code-token vector (see
/// ScanScopes). A token may carry several at once.
enum ScopeFlag : uint8_t {
  kNsScope = 1,     // namespace/global scope (type bodies excluded)
  kInLoop = 2,      // inside at least one loop body
  kInParallel = 4,  // inside a ParallelFor/2D/Shards call extent
  kInHotFn = 8,     // inside a function annotated // gnndm-hot
  kInLambda = 16,   // inside a lambda body
  kPp = 32,         // on a preprocessor line
};

struct SourceFile {
  std::string rel;                  // path relative to repo root
  std::string contents;
  std::vector<std::string> lines;   // raw source lines
  std::vector<std::string> code;    // lines with comments/strings blanked
  std::vector<Token> tokens;        // comment tokens included
  std::vector<IncludeDirective> includes;
  std::vector<uint8_t> tok_flags;   // parallel to CodeTokens(*this)
  std::string module;               // src/<m>/ -> m; tools/bench/tests/...
  bool is_header = false;
  bool is_source = false;

  bool InDir(const std::string& prefix) const {
    return rel.rfind(prefix, 0) == 0;
  }
};

struct Finding {
  std::string file;
  size_t line;  // 0 = whole-file
  std::string rule;
  std::string message;
  // Machine-readable fix payload: for transitive-include, the
  // repo-relative header to add; unused otherwise.
  std::string fix_path;
};

struct Suppression {
  size_t line;
  std::string rule;
  std::string justification;
  bool legacy = false;  // serial-ok / timer-ok / batch-plane-ok shorthand
  bool used = false;
};

std::vector<Finding> g_violations;

void Report(const std::string& rel, size_t line, const std::string& rule,
            const std::string& message, const std::string& fix_path = "") {
  g_violations.push_back({rel, line, rule, message, fix_path});
}

void Report(const SourceFile& f, size_t line, const std::string& rule,
            const std::string& message) {
  Report(f.rel, line, rule, message);
}

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      "include-guard",      "raw-lock",
      "raw-thread",         "batch-plane",
      "assert-in-cc",       "deserialize-validate",
      "raw-loop-kernel",    "raw-timer",
      "unordered-iteration", "raw-rng",
      "thread-id-in-stats", "float-accum-in-parallel",
      "layering",           "transitive-include",
      "include-order",      "hot-path-alloc",
      "simd-isolation",     "metric-name-registry",
  };
  return kRules;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Parses every suppression comment in `f`. Malformed ones (unknown rule,
/// missing justification) are reported immediately.
std::vector<Suppression> CollectSuppressions(const SourceFile& f) {
  std::vector<Suppression> out;
  const std::map<std::string, std::string> kLegacy = {
      {"serial-ok", "raw-loop-kernel"},
      {"timer-ok", "raw-timer"},
      {"batch-plane-ok", "batch-plane"},
  };
  for (const Token& tok : f.tokens) {
    if (tok.kind != TokKind::kComment) continue;
    const std::string& text = tok.text;
    const size_t at = text.find("gnndm-lint:");
    if (at != std::string::npos) {
      const size_t sup = text.find("suppress", at);
      const size_t open = text.find('(', at);
      const size_t close = text.find(')', at);
      if (sup == std::string::npos || open == std::string::npos ||
          close == std::string::npos || close < open) {
        Report(f, tok.line, "bad-suppression",
               "malformed suppression; expected 'gnndm-lint: "
               "suppress(<rule-id>): <justification>'");
        continue;
      }
      const std::string rule = Trim(text.substr(open + 1, close - open - 1));
      if (KnownRules().count(rule) == 0) {
        Report(f, tok.line, "bad-suppression",
               "suppression names unknown rule '" + rule + "'");
        continue;
      }
      const size_t colon = text.find(':', close);
      const std::string just =
          colon == std::string::npos ? "" : Trim(text.substr(colon + 1));
      if (just.empty()) {
        Report(f, tok.line, "bad-suppression",
               "suppression of '" + rule +
                   "' carries no justification; write 'gnndm-lint: "
                   "suppress(" + rule + "): <why this is safe>'");
        continue;
      }
      out.push_back({tok.line, rule, just, /*legacy=*/false, false});
      continue;
    }
    for (const auto& [marker, rule] : kLegacy) {
      const size_t pos = text.find(marker);
      if (pos == std::string::npos) continue;
      // Require a word boundary so e.g. "not serial-ok" in prose with a
      // preceding identifier char doesn't count; markers start the
      // escape grammar with "<marker>:".
      if (pos > 0 && (std::isalnum(static_cast<unsigned char>(
                          text[pos - 1])) ||
                      text[pos - 1] == '-' || text[pos - 1] == '_')) {
        continue;
      }
      const size_t colon = pos + marker.size();
      if (colon >= text.size() || text[colon] != ':') continue;
      const std::string just = Trim(text.substr(colon + 1));
      if (just.empty()) {
        Report(f, tok.line, "bad-suppression",
               "'" + marker + "' marker carries no justification text");
        continue;
      }
      out.push_back({tok.line, rule, just, /*legacy=*/true, false});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Code tokens only (comments dropped), with an index back into them.
std::vector<const Token*> CodeTokens(const SourceFile& f) {
  std::vector<const Token*> out;
  out.reserve(f.tokens.size());
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::kComment) out.push_back(&t);
  }
  return out;
}

bool IsIdent(const Token* t, const char* text) {
  return t->kind == TokKind::kIdent && t->text == text;
}

bool IsPunct(const Token* t, const char* text) {
  return t->kind == TokKind::kPunct && t->text == text;
}

/// True if toks[i..] begins the qualified sequence std::<name>.
bool IsStdQualified(const std::vector<const Token*>& toks, size_t i,
                    const char* name) {
  return i + 2 < toks.size() && IsIdent(toks[i], "std") &&
         IsPunct(toks[i + 1], "::") && IsIdent(toks[i + 2], name);
}

/// Given toks[i] == "<", returns the index one past the matching ">".
/// The lexer emits ">>" as one token; it closes two levels.
size_t SkipTemplateArgs(const std::vector<const Token*>& toks, size_t i) {
  long depth = 0;
  for (; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "<")) ++depth;
    if (IsPunct(toks[i], ">")) --depth;
    if (IsPunct(toks[i], ">>")) depth -= 2;
    if (depth <= 0) return i + 1;
  }
  return i;
}

// ---------------------------------------------------------------------------
// Scope scanner
// ---------------------------------------------------------------------------
//
// Classifies every brace in the code-token stream and exposes the result
// as per-token ScopeFlag bits. The classification is syntactic but
// token-accurate: braces inside strings/comments were already removed by
// the lexer, preprocessor lines (including multi-line macro bodies via
// backslash continuation) are flagged kPp and skipped, and lambdas,
// braceless loop bodies, and ParallelFor call extents are all tracked.

/// 1-based line -> is part of a preprocessor directive (with backslash
/// continuations folded in).
std::vector<bool> PreprocessorLines(const std::vector<std::string>& lines) {
  std::vector<bool> pp(lines.size() + 2, false);
  bool cont = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    bool is_pp = cont;
    if (!is_pp) {
      const std::string t = Trim(lines[i]);
      is_pp = !t.empty() && t[0] == '#';
    }
    pp[i + 1] = is_pp;
    const size_t e = lines[i].find_last_not_of(" \t\r");
    cont = is_pp && e != std::string::npos && lines[i][e] == '\\';
  }
  return pp;
}

struct ScopeFrame {
  char kind;        // 'n'amespace 't'ype 'f'unction 'l'ambda l'o'op
                    // 'c'ontrol 'b'lock/init-list 'v'irtual braceless loop
  bool hot = false; // function frame carries a // gnndm-hot annotation
  long paren = 0;   // paren depth at push (virtual frames pop on ';' here)
};

std::vector<uint8_t> ScanScopes(const SourceFile& f,
                                const std::vector<const Token*>& toks,
                                const std::vector<bool>& pp_lines) {
  // Lines carrying a `// gnndm-hot` annotation: the annotation marks the
  // function whose declaration starts on (or just below) that line.
  std::set<size_t> hot_lines;
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kComment &&
        t.text.find("gnndm-hot") != std::string::npos) {
      hot_lines.insert(t.line);
    }
  }

  std::vector<uint8_t> flags(toks.size(), 0);
  std::vector<ScopeFrame> stack;
  std::vector<char> paren_kinds;  // what each open '(' belongs to
  std::vector<long> par_ext;      // paren depths where ParallelFor extents end
  long paren = 0;
  char pending_ctrl = 0;    // loop/control keyword awaiting its '('
  char closed_header = 0;   // kind of the paren group that just closed
  bool pending_type = false;
  bool pending_ns = false;
  size_t decl_start_line = 1;
  bool decl_start_pending = true;  // next token begins a declaration

  auto at_decl_scope = [&]() {
    for (const ScopeFrame& fr : stack) {
      if (fr.kind != 'n' && fr.kind != 't') return false;
    }
    return true;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token* t = toks[i];
    const bool is_pp = t->line < pp_lines.size() && pp_lines[t->line];

    // Flags reflect the state *around* this token.
    uint8_t fl = 0;
    bool only_ns = true, in_loop = false, in_lambda = false, hot = false;
    for (const ScopeFrame& fr : stack) {
      if (fr.kind != 'n') only_ns = false;
      if (fr.kind == 'o' || fr.kind == 'v') in_loop = true;
      if (fr.kind == 'l') in_lambda = true;
      if (fr.hot) hot = true;
    }
    if (only_ns) fl |= kNsScope;
    if (in_loop) fl |= kInLoop;
    if (!par_ext.empty()) fl |= kInParallel;
    if (hot) fl |= kInHotFn;
    if (in_lambda) fl |= kInLambda;
    if (is_pp) fl |= kPp;
    flags[i] = fl;
    if (is_pp) continue;  // directives don't drive scope structure

    if (decl_start_pending && t->kind != TokKind::kComment) {
      decl_start_line = t->line;
      decl_start_pending = false;
    }

    if (t->kind == TokKind::kIdent) {
      const std::string& s = t->text;
      if (s == "namespace") {
        pending_ns = true;
      } else if (s == "class" || s == "struct" || s == "union" ||
                 s == "enum") {
        pending_type = true;
      } else if (s == "for" || s == "while") {
        pending_ctrl = 'o';
      } else if (s == "if" || s == "switch" || s == "catch") {
        pending_ctrl = 'c';
      } else if (s == "do") {
        // `do { ... } while (...)` — body brace follows directly;
        // a braceless do-body gets a virtual loop frame.
        if (i + 1 < toks.size() && IsPunct(toks[i + 1], "{")) {
          closed_header = 'o';
        } else {
          stack.push_back({'v', false, paren});
        }
      } else if ((s == "ParallelFor" || s == "ParallelFor2D" ||
                  s == "ParallelForShards") &&
                 i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
        // A *call* — not a declaration/definition, which has a return
        // type identifier before the (possibly qualified) name. Walk
        // back over `Ident::` qualifiers: `void ThreadPool::ParallelFor(`
        // is a definition, `gnndm::ParallelFor(` a call.
        size_t q = i;
        while (q >= 2 && IsPunct(toks[q - 1], "::") &&
               toks[q - 2]->kind == TokKind::kIdent) {
          q -= 2;
        }
        const bool declaration =
            q > 0 && toks[q - 1]->kind == TokKind::kIdent;
        // Everything up to the matching ')' — lambda body included — is
        // the parallel extent.
        if (!declaration) par_ext.push_back(paren);
      }
      continue;
    }

    if (t->kind != TokKind::kPunct) continue;
    const std::string& p = t->text;

    if (p == "(") {
      char k = '.';
      if (pending_ctrl != 0) {
        k = pending_ctrl;
        pending_ctrl = 0;
      } else if (i > 0 && IsPunct(toks[i - 1], "]")) {
        k = 'l';  // lambda introducer's parameter list
      }
      paren_kinds.push_back(k);
      ++paren;
    } else if (p == ")") {
      --paren;
      closed_header = paren_kinds.empty() ? '.' : paren_kinds.back();
      if (!paren_kinds.empty()) paren_kinds.pop_back();
      if (!par_ext.empty() && paren == par_ext.back()) par_ext.pop_back();
      // Braceless loop body: push a virtual frame popped at the
      // statement-ending ';' (or at the '}' of a braced sub-statement).
      if (closed_header == 'o' && i + 1 < toks.size() &&
          !IsPunct(toks[i + 1], "{")) {
        stack.push_back({'v', false, paren});
        closed_header = 0;
      }
    } else if (p == "{") {
      char kind;
      const Token* prev = i > 0 ? toks[i - 1] : nullptr;
      if (pending_ns) {
        kind = 'n';
      } else if (pending_type) {
        kind = 't';
      } else if (prev != nullptr && IsPunct(prev, "]")) {
        kind = 'l';  // capture-only lambda: [..]{ }
      } else if (closed_header == 'o' || closed_header == 'c' ||
                 closed_header == 'l') {
        kind = closed_header;
      } else if (prev != nullptr &&
                 (IsIdent(prev, "else") || IsIdent(prev, "try"))) {
        kind = 'c';
      } else if (prev != nullptr &&
                 (IsPunct(prev, "=") || IsPunct(prev, ",") ||
                  IsPunct(prev, "(") || IsPunct(prev, "{") ||
                  IsPunct(prev, "[") || IsIdent(prev, "return"))) {
        kind = 'b';  // braced initializer / aggregate literal
      } else if (at_decl_scope() &&
                 (prev == nullptr || IsPunct(prev, ")") ||
                  IsPunct(prev, "}") || IsPunct(prev, ">") ||
                  IsIdent(prev, "const") || IsIdent(prev, "noexcept") ||
                  IsIdent(prev, "override") || IsIdent(prev, "final") ||
                  IsIdent(prev, "try"))) {
        kind = 'f';  // function body (incl. after ctor-init-list / specifiers)
      } else {
        kind = 'b';
      }
      bool hot_fn = false;
      if (kind == 'f') {
        // Annotated if a // gnndm-hot comment sits on the line above the
        // declaration or anywhere across the signature lines.
        for (size_t ln = decl_start_line > 0 ? decl_start_line - 1 : 0;
             ln <= t->line; ++ln) {
          if (hot_lines.count(ln) > 0) hot_fn = true;
        }
      }
      stack.push_back({kind, hot_fn, paren});
      pending_ns = false;
      pending_type = false;
      closed_header = 0;
      decl_start_pending = true;
    } else if (p == "}") {
      if (!stack.empty()) stack.pop_back();
      // A braced sub-statement ends a braceless loop body:
      //   for (...) if (...) { ... }   <- the for's statement ends here
      while (!stack.empty() && stack.back().kind == 'v' &&
             paren == stack.back().paren && i + 1 < toks.size() &&
             !IsIdent(toks[i + 1], "else")) {
        stack.pop_back();
      }
      closed_header = 0;
      decl_start_pending = true;
    } else if (p == ";") {
      while (!stack.empty() && stack.back().kind == 'v' &&
             paren == stack.back().paren) {
        stack.pop_back();
      }
      pending_type = false;  // `class X;` forward declaration
      closed_header = 0;
      decl_start_pending = true;
    }
  }
  return flags;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// GNNDM_<PATH>_H_ with the leading src/ stripped, matching the existing
/// style: src/common/status.h -> GNNDM_COMMON_STATUS_H_.
std::string ExpectedGuard(const std::string& rel) {
  std::string trimmed = StartsWith(rel, "src/") ? rel.substr(4) : rel;
  std::string guard = "GNNDM_";
  for (char c : trimmed) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludeGuard(const SourceFile& f) {
  if (!f.is_header) return;
  const std::string guard = ExpectedGuard(f.rel);
  bool has_ifndef = false, has_define = false;
  for (const auto& line : f.lines) {
    if (line.find("#ifndef " + guard) != std::string::npos) has_ifndef = true;
    if (line.find("#define " + guard) != std::string::npos) has_define = true;
  }
  if (!has_ifndef || !has_define) {
    Report(f, 0, "include-guard", "header must use include guard " + guard);
  }
}

// std::thread is allowed only where a worker thread is genuinely owned
// and its shared state is annotated; everything else goes through
// ThreadPool. Tests may spawn raw threads to provoke races.
const std::set<std::string> kThreadAllowlist = {
    "src/common/thread_pool.h", "src/common/thread_pool.cc",
    // hardware_concurrency() only; all shared state is annotated.
    "src/common/parallel_for.cc",
    "src/core/batch_source.h", "src/core/batch_source.cc",
};

void CheckConcurrencyPrimitives(const SourceFile& f,
                                const std::vector<const Token*>& toks) {
  // The wrapper itself, and the lock-order detector that sits beneath it
  // (which must use the raw std::mutex to avoid recursing into its own
  // hooks), are the only legal homes for the raw primitives.
  if (f.rel == "src/common/annotations.h" ||
      f.rel == "src/common/lock_order.h" ||
      f.rel == "src/common/lock_order.cc") {
    return;
  }
  static const char* kLockNames[] = {
      "mutex",       "condition_variable", "lock_guard",
      "unique_lock", "scoped_lock",        "shared_mutex",
      "recursive_mutex", "timed_mutex",    "condition_variable_any",
  };
  const bool thread_allowed =
      !f.InDir("src/") || kThreadAllowlist.count(f.rel) > 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "std")) continue;
    for (const char* name : kLockNames) {
      if (IsStdQualified(toks, i, name)) {
        Report(f, toks[i]->line, "raw-lock",
               "std::" + std::string(name) +
                   " bypasses thread-safety analysis and the lock-order "
                   "graph; use gnndm::Mutex / MutexLock / CondVar from "
                   "common/annotations.h");
      }
    }
    if (!thread_allowed && IsStdQualified(toks, i, "thread")) {
      Report(f, toks[i]->line, "raw-thread",
             "std::thread outside the audited concurrency surfaces; "
             "use ThreadPool or add the file to the lint allowlist "
             "after annotating its shared state");
    }
  }
}

/// Batch production is unified behind the BatchSource plane: src/ code
/// outside src/core/batch_source.{h,cc} must not name the producer-thread
/// implementation (AsyncBatchSource) or the retired AsyncBatchLoader.
void CheckBatchPlane(const SourceFile& f,
                     const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  if (f.rel == "src/core/batch_source.h" ||
      f.rel == "src/core/batch_source.cc") {
    return;
  }
  for (const Token* t : toks) {
    if (IsIdent(t, "AsyncBatchSource") || IsIdent(t, "AsyncBatchLoader")) {
      Report(f, t->line, "batch-plane",
             t->text +
                 " outside src/core/batch_source.{h,cc} fragments the "
                 "batch data plane; go through MakeBatchSource");
    }
  }
}

void CheckAssert(const SourceFile& f, const std::vector<const Token*>& toks) {
  if (!f.is_source || f.InDir("tests/")) return;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (IsIdent(toks[i], "assert") && IsPunct(toks[i + 1], "(")) {
      Report(f, toks[i]->line, "assert-in-cc",
             "assert() in non-test code vanishes under -DNDEBUG without "
             "trace; use GNNDM_DCHECK (debug) or GNNDM_CHECK (always)");
    }
  }
}

void CheckDeserializationValidates(const SourceFile& f,
                                   const std::vector<const Token*>& toks) {
  if (!f.is_source || !f.InDir("src/")) return;
  bool reads_binary = false, has_ifstream = false, has_validate = false;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (IsIdent(toks[i], "binary") && i >= 2 && IsPunct(toks[i - 1], "::") &&
        IsIdent(toks[i - 2], "ios")) {
      reads_binary = true;
    }
    if (toks[i]->kind == TokKind::kIdent &&
        toks[i]->text.find("ifstream") != std::string::npos) {
      has_ifstream = true;
    }
    // Any Validate* call counts (Validate, ValidateLoadedTensor, ...);
    // comments mentioning validation do not — tokens only.
    if (toks[i]->kind == TokKind::kIdent &&
        toks[i]->text.rfind("Validate", 0) == 0) {
      has_validate = true;
    }
  }
  if (reads_binary && has_ifstream && !has_validate) {
    Report(f, 0, "deserialize-validate",
           "binary deserializer must run a Validate() pass over the "
           "decoded structures before returning them");
  }
}

/// True if `line` is `for (` at an indent of at least `min_indent` spaces.
bool IsForAtIndent(const std::string& line, size_t min_indent) {
  size_t p = 0;
  while (p < line.size() && line[p] == ' ') ++p;
  return p >= min_indent && line.compare(p, 5, "for (") == 0;
}

/// Hot-kernel loops in src/tensor and src/nn must go through the
/// ParallelFor work-sharing layer. Heuristic: a function-top-level `for`
/// (exactly 2-space indent in this codebase) containing a nested loop is
/// kernel-shaped. Operates on comment/string-blanked `code` lines.
void CheckRawLoopKernels(const SourceFile& f) {
  if (!f.is_source ||
      (!f.InDir("src/tensor/") && !f.InDir("src/nn/"))) {
    return;
  }
  const std::vector<std::string>& code = f.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].rfind("  for (", 0) != 0 || code[i][2] != 'f') continue;
    long depth = 0;
    bool nested = false;
    for (size_t j = i; j < code.size(); ++j) {
      if (j > i && IsForAtIndent(code[j], 4)) nested = true;
      for (char c : code[j]) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (j > i && depth <= 0) break;
      if (j == i && depth == 0) break;  // braceless one-liner
    }
    if (nested) {
      Report(f, i + 1, "raw-loop-kernel",
             "nested loop in a tensor/nn kernel bypasses ParallelFor "
             "(common/parallel_for.h); parallelize it or mark it "
             "'// serial-ok: <reason>'");
    }
  }
}

/// The pipeline-stage directories must not time work outside the span
/// tracer: a raw WallTimer there produces numbers telemetry (and the
/// EpochStats reconciliation test) cannot see.
void CheckTimerUse(const SourceFile& f,
                   const std::vector<const Token*>& toks) {
  if (!f.is_source ||
      (!f.InDir("src/core/") && !f.InDir("src/transfer/") &&
       !f.InDir("src/sampling/"))) {
    return;
  }
  for (const Token* t : toks) {
    if (IsIdent(t, "WallTimer")) {
      Report(f, t->line, "raw-timer",
             "direct WallTimer in a pipeline-stage directory escapes the "
             "telemetry breakdown; use TRACE_SPAN(\"subsystem.name\") or "
             "mark the line '// timer-ok: <reason>'");
    }
  }
}

/// Names declared (anywhere in `f`) with an unordered container type,
/// including via std::vector<std::unordered_*<...>>. Token heuristic: an
/// `unordered_map`/`unordered_set` identifier, skip its template args,
/// skip trailing type syntax (`>`, `>>`, `&`, `*`, `const`), and take the
/// next identifier as the declared name. Over-approximates (a function
/// returning an unordered container is collected too) — which is correct
/// here, because iterating such a return value is just as order-unstable.
std::set<std::string> UnorderedNames(const std::vector<const Token*>& toks) {
  std::set<std::string> names;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "unordered_map") &&
        !IsIdent(toks[i], "unordered_set")) {
      continue;
    }
    size_t j = i + 1;
    if (j < toks.size() && IsPunct(toks[j], "<")) {
      j = SkipTemplateArgs(toks, j);
    }
    while (j < toks.size() &&
           (IsPunct(toks[j], ">") || IsPunct(toks[j], ">>") ||
            IsPunct(toks[j], "&") || IsPunct(toks[j], "*") ||
            IsIdent(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j]->kind == TokKind::kIdent) {
      names.insert(toks[j]->text);
    }
  }
  return names;
}

/// Determinism rule: iteration over std::unordered_map/unordered_set in
/// src/ — the iteration order is implementation-defined (libstdc++,
/// libc++, and different bucket counts all disagree), so any traversal
/// feeding computation or output is a reproducibility bug waiting for a
/// toolchain bump. Flags (a) range-for statements whose range expression
/// names an unordered container, and (b) explicit .begin()/.end() family
/// calls on one.
void CheckUnorderedIteration(const SourceFile& f,
                             const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  const std::set<std::string> names = UnorderedNames(toks);
  if (names.empty()) return;

  for (size_t i = 0; i < toks.size(); ++i) {
    // (a) for ( ... : <expr naming an unordered var> )
    if (IsIdent(toks[i], "for") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      long depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")") && --depth == 0) {
          close = j;
          break;
        }
        if (depth == 1 && colon == 0 && IsPunct(toks[j], ":")) colon = j;
      }
      if (colon != 0 && close != 0) {
        for (size_t j = colon + 1; j < close; ++j) {
          if (toks[j]->kind == TokKind::kIdent &&
              names.count(toks[j]->text) > 0) {
            Report(f, toks[i]->line, "unordered-iteration",
                   "range-for over unordered container '" + toks[j]->text +
                       "': iteration order is implementation-defined and "
                       "breaks byte-identical output; sort the keys or "
                       "keep a parallel insertion-order vector");
            break;
          }
        }
      }
    }
    // (b) <unordered var> [...].begin() / .cbegin() — the start of an
    // explicit iterator traversal. A bare .end() is not flagged: it is
    // almost always the `find() != end()` membership idiom. A member
    // access `other.name.begin()` is skipped too — the collected names
    // are file-local declarations, not members of foreign structs.
    if (toks[i]->kind == TokKind::kIdent && names.count(toks[i]->text) > 0 &&
        !(i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")))) {
      size_t j = i + 1;
      while (j + 1 < toks.size() && IsPunct(toks[j], "[")) {
        long depth = 0;
        for (; j < toks.size(); ++j) {
          if (IsPunct(toks[j], "[")) ++depth;
          if (IsPunct(toks[j], "]") && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      if (j + 1 < toks.size() && IsPunct(toks[j], ".") &&
          (IsIdent(toks[j + 1], "begin") ||
           IsIdent(toks[j + 1], "cbegin"))) {
        Report(f, toks[i]->line, "unordered-iteration",
               "iterator traversal of unordered container '" +
                   toks[i]->text +
                   "' is order-unstable; sort the keys first");
      }
    }
  }
}

/// Determinism rule: every random draw flows from a seeded gnndm::Rng.
/// rand()/srand()/clock()/time() and std::random_device are either
/// schedule-, wall-clock-, or entropy-dependent; a single call anywhere
/// on a training path silently breaks run-to-run reproducibility.
void CheckRawRng(const SourceFile& f, const std::vector<const Token*>& toks) {
  if (!f.InDir("src/") && !f.InDir("tools/") && !f.InDir("bench/")) return;
  if (f.rel == "src/common/rng.h" || f.rel == "src/common/rng.cc") return;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token* t = toks[i];
    if (t->kind != TokKind::kIdent) continue;
    if (IsIdent(t, "random_device")) {
      Report(f, t->line, "raw-rng",
             "std::random_device draws nondeterministic entropy; seed a "
             "gnndm::Rng (common/rng.h) instead");
      continue;
    }
    const bool call_like =
        i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
    if (!call_like) continue;
    const bool member = i > 0 && (IsPunct(toks[i - 1], ".") ||
                                  IsPunct(toks[i - 1], "->"));
    if (member) continue;  // foo.time() is not ::time()
    if (IsIdent(t, "rand") || IsIdent(t, "srand") || IsIdent(t, "time") ||
        IsIdent(t, "clock")) {
      Report(f, t->line, "raw-rng",
             t->text +
                 "() is wall-clock/entropy-dependent; all randomness and "
                 "timing must flow from gnndm::Rng seeds or the telemetry "
                 "clocks");
    }
  }
}

/// Isolation rule: raw SIMD intrinsics, vector types, and vector-ISA
/// feature tests may appear only in the per-tier kernel TUs
/// (src/tensor/simd*) and the cpuid probe (src/common/cpu_features.*).
/// Everything else calls through the dispatched SimdKernels table, so
/// the fixed-lane determinism contract has exactly one audit surface and
/// business logic cannot grow silent per-ISA forks.
void CheckSimdIsolation(const SourceFile& f,
                        const std::vector<const Token*>& toks) {
  if (!f.InDir("src/") && !f.InDir("tools/") && !f.InDir("bench/") &&
      !f.InDir("tests/")) {
    return;
  }
  if (f.rel.rfind("src/tensor/simd", 0) == 0) return;
  if (f.rel.rfind("src/common/cpu_features", 0) == 0) return;

  static const std::set<std::string> kIsaHeaders = {
      "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
      "smmintrin.h", "tmmintrin.h", "nmmintrin.h", "avxintrin.h",
      "arm_neon.h",  "arm_sve.h",
  };
  for (const IncludeDirective& inc : f.includes) {
    if (kIsaHeaders.count(inc.path) > 0) {
      Report(f, inc.line, "simd-isolation",
             "#include <" + inc.path +
                 "> outside src/tensor/simd*: raw intrinsics live behind "
                 "the dispatched SimdKernels table (tensor/simd.h)");
    }
  }

  auto is_vector_intrinsic = [](const std::string& s) {
    // x86: _mm_*/_mm256_*/_mm512_* calls and __m128/__m256/__m512 types.
    if (s.rfind("_mm", 0) == 0) return true;
    if (s.rfind("__m128", 0) == 0 || s.rfind("__m256", 0) == 0 ||
        s.rfind("__m512", 0) == 0) {
      return true;
    }
    // NEON: vector types (float32x4_t, uint32x4_t, ...) and the v*q_f32
    // style op names.
    if (s.rfind("float32x", 0) == 0 || s.rfind("float64x", 0) == 0 ||
        s.rfind("float16x", 0) == 0 || s.rfind("uint32x", 0) == 0 ||
        s.rfind("uint8x", 0) == 0 || s.rfind("int32x", 0) == 0 ||
        s.rfind("vld1", 0) == 0 || s.rfind("vst1", 0) == 0) {
      return true;
    }
    if (!s.empty() && s[0] == 'v' &&
        (s.find("q_f32") != std::string::npos ||
         s.find("q_u32") != std::string::npos ||
         s.find("q_s32") != std::string::npos ||
         s.find("_n_f32") != std::string::npos)) {
      return true;
    }
    return false;
  };
  for (const Token* t : toks) {
    if (t->kind != TokKind::kIdent) continue;
    if (is_vector_intrinsic(t->text)) {
      Report(f, t->line, "simd-isolation",
             "SIMD intrinsic '" + t->text +
                 "' outside src/tensor/simd*: add or extend a kernel in "
                 "the dispatched SimdKernels table instead");
    } else if (t->text == "__builtin_cpu_supports" ||
               t->text == "__builtin_cpu_init") {
      Report(f, t->line, "simd-isolation",
             "CPU feature probing outside src/common/cpu_features.*: use "
             "CpuHasAvx2Fma()/CpuHasNeon() so tier selection has one "
             "truth");
    }
  }

  // Vector-ISA #if forks (architecture macros like __x86_64__ stay
  // legal — they gate compilation targets, not lane semantics).
  static const char* kIsaMacros[] = {"__AVX", "__SSE", "__FMA__",
                                     "__ARM_NEON", "__ARM_FEATURE"};
  const std::vector<bool> pp = PreprocessorLines(f.lines);
  for (size_t i = 0; i < f.lines.size(); ++i) {
    if (!pp[i + 1]) continue;
    for (const char* macro : kIsaMacros) {
      if (f.lines[i].find(macro) != std::string::npos) {
        Report(f, i + 1, "simd-isolation",
               std::string("vector-ISA preprocessor fork on ") + macro +
                   " outside src/tensor/simd*: per-tier code belongs in "
                   "the kernel TUs");
        break;
      }
    }
  }
}

/// Determinism rule: values derived from std::this_thread::get_id() are
/// pure scheduling artifacts. The telemetry layer identifies threads by
/// registration order (stable per run shape); nothing else may key state
/// or stats off a thread id.
void CheckThreadIdInStats(const SourceFile& f,
                          const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (IsIdent(toks[i], "get_id") && i >= 2 &&
        IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "this_thread")) {
      Report(f, toks[i]->line, "thread-id-in-stats",
             "std::this_thread::get_id() is schedule-dependent; key "
             "per-thread state off registration order (see "
             "telemetry::Tracer) so stats stay deterministic");
    }
  }
}

/// Names declared as scalar float/double variables: `double x =`,
/// `float y;`, `double z{...}`. Parameters and members are excluded by
/// requiring an initializer or plain `;` so the rule stays precise.
std::set<std::string> ScalarFloatNames(const std::vector<const Token*>& toks,
                                       size_t begin, size_t end) {
  std::set<std::string> names;
  if (end > toks.size()) end = toks.size();
  for (size_t i = begin; i + 2 < end; ++i) {
    if (!IsIdent(toks[i], "double") && !IsIdent(toks[i], "float")) continue;
    const Token* name = toks[i + 1];
    const Token* next = toks[i + 2];
    if (name->kind != TokKind::kIdent) continue;
    if (IsPunct(next, "=") || IsPunct(next, ";") || IsPunct(next, "{")) {
      names.insert(name->text);
    }
  }
  return names;
}

/// Determinism rule: accumulating into a shared scalar float inside a
/// ParallelFor body sums chunks in completion order — a different order
/// (and different rounding) every run, and usually a data race besides.
/// Element-wise updates (`out[i] += x`, `dst.row(r)[c] += v`) are fine:
/// each element is owned by exactly one chunk. Deterministic escape: keep
/// per-chunk partials and reduce in index order, then suppress with
/// `gnndm-lint: suppress(float-accum-in-parallel): <why ordered>`.
void CheckFloatAccumInParallel(const SourceFile& f,
                               const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  const std::set<std::string> floats =
      ScalarFloatNames(toks, 0, toks.size());
  if (floats.empty()) return;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "ParallelFor") &&
        !IsIdent(toks[i], "ParallelFor2D") &&
        !IsIdent(toks[i], "ParallelForShards")) {
      continue;
    }
    if (!IsPunct(toks[i + 1], "(")) continue;
    long depth = 0;
    size_t end = toks.size();
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (IsPunct(toks[j], "(")) ++depth;
      if (IsPunct(toks[j], ")") && --depth == 0) {
        end = j;
        break;
      }
    }
    // A float declared *inside* the call extent (a lambda-body local) is
    // chunk-private: each invocation owns its own copy, so accumulating
    // into it is a deterministic per-chunk partial, not a shared sum.
    const std::set<std::string> extent_locals =
        ScalarFloatNames(toks, i + 2, end);
    for (size_t j = i + 2; j < end; ++j) {
      if (!IsPunct(toks[j], "+=") && !IsPunct(toks[j], "-=")) continue;
      const Token* lhs = toks[j - 1];
      if (lhs->kind != TokKind::kIdent || floats.count(lhs->text) == 0 ||
          extent_locals.count(lhs->text) > 0) {
        continue;
      }
      // `x[k] += v` and `p->x += v` are element/field updates, not shared
      // scalar accumulation; require the identifier to stand alone.
      if (j >= 2 && (IsPunct(toks[j - 2], "]") || IsPunct(toks[j - 2], ".") ||
                     IsPunct(toks[j - 2], "->"))) {
        continue;
      }
      Report(f, lhs->line, "float-accum-in-parallel",
             "accumulation into shared float '" + lhs->text +
                 "' inside a ParallelFor body sums in completion order "
                 "(nondeterministic rounding, likely racy); keep "
                 "per-chunk partials and reduce in index order");
    }
    i = end;
  }
}

/// True if a declaration starting at the std:: qualifier of toks[i] is
/// static or thread_local (scan back a few tokens, stopping at statement
/// boundaries) — such a local allocates once, not per iteration.
bool IsStaticDecl(const std::vector<const Token*>& toks, size_t i) {
  for (size_t back = 0; back < 4 && i - back > 0; ++back) {
    const Token* t = toks[i - back - 1];
    if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}") ||
        IsPunct(t, "(")) {
      return false;
    }
    if (IsIdent(t, "static") || IsIdent(t, "thread_local")) return true;
  }
  return false;
}

/// Perf rule (the paper's central measurement): per-iteration heap
/// allocation inside sampler/kernel inner loops is a silent framework
/// overhead that corrupts exactly the data-management costs this repo
/// exists to measure. A token is "hot" when it sits inside a
/// ParallelFor/ParallelFor2D/ParallelForShards call extent (the body runs
/// once per chunk on the worker pool), or inside a loop of a function
/// annotated `// gnndm-hot` (so the fix — hoisting the buffer above the
/// loop, into SamplerScratch or a caller-owned scratch struct — is by
/// construction not re-flagged). Flags:
///   - `new` expressions
///   - std::make_unique / std::make_shared
///   - construction of an owning std::{vector,string,deque,map,set,
///     unordered_map,unordered_set} object (references/pointers to one
///     are free and not flagged; static/thread_local locals allocate
///     once and are not flagged)
///   - std::function materialization (type-erased callables allocate;
///     use gnndm::FunctionRef on hot call paths)
///   - insert/emplace into an unordered container (rehash + node alloc)
void CheckHotPathAlloc(const SourceFile& f,
                       const std::vector<const Token*>& toks,
                       const std::vector<uint8_t>& flags) {
  if (!f.InDir("src/")) return;
  static const std::set<std::string> kOwningContainers = {
      "vector", "string", "deque", "map", "set",
      "unordered_map", "unordered_set", "multimap", "multiset",
  };
  const std::set<std::string> unordered = UnorderedNames(toks);
  for (size_t i = 0; i < toks.size() && i < flags.size(); ++i) {
    const uint8_t fl = flags[i];
    if (fl & kPp) continue;
    const bool hot =
        (fl & kInParallel) != 0 ||
        ((fl & kInHotFn) != 0 && (fl & kInLoop) != 0);
    if (!hot) continue;
    const Token* t = toks[i];
    if (t->kind != TokKind::kIdent) continue;
    const bool member =
        i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));

    if (t->text == "new" && !member) {
      Report(f, t->line, "hot-path-alloc",
             "'new' on a hot path allocates per iteration; hoist the "
             "buffer into caller-owned scratch (see SamplerScratch)");
      continue;
    }
    if (!member &&
        (t->text == "make_unique" || t->text == "make_shared")) {
      Report(f, t->line, "hot-path-alloc",
             "std::" + t->text +
                 " on a hot path allocates per iteration; construct the "
                 "object once outside and reuse it");
      continue;
    }
    const bool std_qualified = i >= 2 && IsPunct(toks[i - 1], "::") &&
                               IsIdent(toks[i - 2], "std");
    if (std_qualified && t->text == "function") {
      Report(f, t->line, "hot-path-alloc",
             "std::function on a hot path type-erases (and usually heap-"
             "allocates) per materialization; take a gnndm::FunctionRef "
             "(common/function_ref.h) instead");
      continue;
    }
    if (std_qualified && kOwningContainers.count(t->text) > 0) {
      // `using X = std::vector<...>` defines a type, allocates nothing.
      if (i >= 5 && IsPunct(toks[i - 3], "=") &&
          IsIdent(toks[i - 5], "using")) {
        continue;
      }
      size_t j = i + 1;
      if (j < toks.size() && IsPunct(toks[j], "<")) {
        j = SkipTemplateArgs(toks, j);
      }
      // A reference/pointer to an existing container, or nested type
      // access (std::vector<T>::iterator), does not allocate.
      bool non_owning = false;
      while (j < toks.size() &&
             (IsPunct(toks[j], "&") || IsPunct(toks[j], "*") ||
              IsPunct(toks[j], "::") || IsIdent(toks[j], "const"))) {
        non_owning = true;
        ++j;
      }
      if (non_owning || IsStaticDecl(toks, i - 2)) continue;
      Report(f, t->line, "hot-path-alloc",
             "constructing a std::" + t->text +
                 " on a hot path allocates per iteration; hoist it above "
                 "the loop / ParallelFor and reuse its capacity");
      continue;
    }
    if (member &&
        (t->text == "insert" || t->text == "emplace" ||
         t->text == "try_emplace") &&
        i >= 2 && toks[i - 2]->kind == TokKind::kIdent &&
        unordered.count(toks[i - 2]->text) > 0) {
      Report(f, t->line, "hot-path-alloc",
             "insertion into unordered container '" + toks[i - 2]->text +
                 "' on a hot path allocates a node (and may rehash) per "
                 "key; pre-size a flat structure or renumber with "
                 "VertexRenumberer scratch");
    }
  }
}

// ---------------------------------------------------------------------------
// Repo-level passes: include graph, layering, transitive includes
// ---------------------------------------------------------------------------

/// Module owning a repo-relative path: src/<m>/... -> m, otherwise the
/// top-level directory (tools, bench, tests, examples).
std::string ModuleOf(const std::string& rel) {
  const size_t slash = rel.find('/');
  if (slash == std::string::npos) return rel;
  const std::string top = rel.substr(0, slash);
  if (top != "src") return top;
  const size_t s2 = rel.find('/', slash + 1);
  if (s2 == std::string::npos) return "src";
  return rel.substr(slash + 1, s2 - slash - 1);
}

void CollectIncludes(SourceFile& f, const fs::path& root) {
  for (size_t ln = 0; ln < f.lines.size(); ++ln) {
    const std::string t = Trim(f.lines[ln]);
    if (!StartsWith(t, "#include")) continue;
    const size_t q = t.find_first_of("\"<", 8);
    if (q == std::string::npos) continue;
    const char close = t[q] == '<' ? '>' : '"';
    const size_t e = t.find(close, q + 1);
    if (e == std::string::npos) continue;
    IncludeDirective inc;
    inc.line = ln + 1;
    inc.path = t.substr(q + 1, e - q - 1);
    inc.angled = t[q] == '<';
    if (!inc.angled) {
      // Quoted paths are rooted at src/ (the tree's single include dir),
      // with repo-root and includer-relative fallbacks.
      if (fs::exists(root / "src" / inc.path)) {
        inc.resolved = "src/" + inc.path;
      } else if (fs::exists(root / inc.path)) {
        inc.resolved = inc.path;
      } else {
        const fs::path rel_dir = fs::path(f.rel).parent_path();
        if (fs::exists(root / rel_dir / inc.path)) {
          inc.resolved = (rel_dir / inc.path).generic_string();
        }
      }
    }
    f.includes.push_back(inc);
  }
}

struct LayerManifest {
  bool loaded = false;
  std::map<std::string, int> layer_of;             // module -> layer index
  std::vector<std::vector<std::string>> layers;    // index -> modules
};

LayerManifest LoadLayerManifest(const fs::path& root) {
  LayerManifest m;
  const std::string rel = "tools/layers.txt";
  std::ifstream in(root / rel);
  if (!in) {
    Report(rel, 0, "layering",
           "layer manifest tools/layers.txt is missing; every module "
           "must be assigned a layer");
    return m;
  }
  std::string line;
  size_t ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    const std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream words(t);
    std::string word;
    words >> word;
    if (word != "layer") {
      Report(rel, ln, "layering",
             "unrecognized manifest directive '" + word +
                 "'; expected 'layer <module>...'");
      continue;
    }
    std::vector<std::string> mods;
    while (words >> word) {
      if (m.layer_of.count(word) > 0) {
        Report(rel, ln, "layering",
               "module '" + word + "' appears in more than one layer");
        continue;
      }
      m.layer_of[word] = static_cast<int>(m.layers.size());
      mods.push_back(word);
    }
    if (!mods.empty()) m.layers.push_back(std::move(mods));
  }
  m.loaded = true;
  return m;
}

/// The include edges of the module DAG, with per-edge multiplicity and a
/// representative occurrence for diagnostics.
struct ModuleGraph {
  std::map<std::pair<std::string, std::string>, size_t> edge_count;
  std::map<std::pair<std::string, std::string>,
           std::pair<std::string, size_t>>
      edge_site;  // (from,to) -> (file, line) of first occurrence
  std::set<std::string> modules;
};

ModuleGraph BuildModuleGraph(const std::vector<SourceFile>& files) {
  ModuleGraph g;
  for (const SourceFile& f : files) {
    g.modules.insert(f.module);
    for (const IncludeDirective& inc : f.includes) {
      if (inc.resolved.empty()) continue;
      const std::string to = ModuleOf(inc.resolved);
      if (to == f.module) continue;
      const auto key = std::make_pair(f.module, to);
      if (g.edge_count[key]++ == 0) {
        g.edge_site[key] = {f.rel, inc.line};
      }
      g.modules.insert(to);
    }
  }
  return g;
}

/// Layering pass: manifest membership, direction, and cycles. Reports
/// one finding per offending #include line so suppressions (and fixes)
/// land where the dependency is introduced.
void CheckLayering(const std::vector<SourceFile>& files,
                   const LayerManifest& manifest, const ModuleGraph& graph) {
  if (!manifest.loaded) return;
  std::set<std::string> unknown_reported;
  for (const SourceFile& f : files) {
    const auto from_it = manifest.layer_of.find(f.module);
    if (from_it == manifest.layer_of.end()) {
      if (unknown_reported.insert(f.module).second) {
        Report(f.rel, 0, "layering",
               "module '" + f.module +
                   "' is not assigned a layer in tools/layers.txt; add "
                   "it to the manifest");
      }
      continue;
    }
    for (const IncludeDirective& inc : f.includes) {
      if (inc.resolved.empty()) continue;
      const std::string to = ModuleOf(inc.resolved);
      if (to == f.module) continue;
      const auto to_it = manifest.layer_of.find(to);
      if (to_it == manifest.layer_of.end()) {
        if (unknown_reported.insert(to).second) {
          Report(f.rel, inc.line, "layering",
                 "included module '" + to +
                     "' is not assigned a layer in tools/layers.txt");
        }
        continue;
      }
      if (to_it->second > from_it->second) {
        Report(f.rel, inc.line, "layering",
               "upward include: module '" + f.module + "' (layer " +
                   std::to_string(from_it->second) + ") includes '" +
                   inc.resolved + "' from module '" + to + "' (layer " +
                   std::to_string(to_it->second) +
                   "); dependencies must point strictly downward");
      } else if (to_it->second == from_it->second) {
        Report(f.rel, inc.line, "layering",
               "cross-layer include: modules '" + f.module + "' and '" +
                   to + "' share layer " +
                   std::to_string(from_it->second) +
                   " and must stay mutually independent; move one of "
                   "them in tools/layers.txt or break the dependency");
      }
    }
  }
  // Cycle detection on the module digraph, independent of the manifest
  // (a manifest edit must never be able to hide a genuine cycle).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [edge, count] : graph.edge_count) {
    (void)count;
    adj[edge.first].push_back(edge.second);
  }
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> path;
  std::function<void(const std::string&)> dfs =
      [&](const std::string& m) {
        state[m] = 1;
        path.push_back(m);
        for (const std::string& n : adj[m]) {
          if (state[n] == 1) {
            std::string cycle = n;
            for (size_t k = path.size(); k-- > 0;) {
              cycle += " -> " + path[k];
              if (path[k] == n) break;
            }
            const auto site = graph.edge_site.at({m, n});
            Report(site.first, site.second, "layering",
                   "module dependency cycle: " + cycle);
          } else if (state[n] == 0) {
            dfs(n);
          }
        }
        path.pop_back();
        state[m] = 2;
      };
  for (const std::string& m : graph.modules) {
    if (state[m] == 0) dfs(m);
  }
}

// ---------------------------------------------------------------------------
// Transitive-include pass (IWYU-lite)
// ---------------------------------------------------------------------------
//
// Each src/ header "provides" the PascalCase types/functions it declares
// at namespace scope plus the macros it defines. Using a name whose
// provider is unique, reachable only transitively, and not included
// directly is a violation: the day the intermediate header drops the
// include, every such use site breaks at once. Only names with exactly
// one providing header participate — ambiguous names prove nothing about
// which include is missing.

bool IsPascalCase(const std::string& s) {
  if (s.size() < 2 || !std::isupper(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  bool has_lower = false;
  for (char c : s) {
    if (c == '_') return false;
    if (std::islower(static_cast<unsigned char>(c))) has_lower = true;
  }
  return has_lower;
}

bool IsMacroName(const std::string& s) {
  if (s.size() < 4) return false;
  if (s.size() > 3 && s.compare(s.size() - 3, 3, "_H_") == 0) return false;
  bool has_underscore = false;
  for (char c : s) {
    if (c == '_') {
      has_underscore = true;
    } else if (!std::isupper(static_cast<unsigned char>(c)) &&
               !std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return has_underscore;
}

/// Names `f` declares: PascalCase types defined at namespace scope
/// (class/struct/enum definitions — forward declarations don't count),
/// `using X =` aliases, free functions, and #define'd macros.
std::set<std::string> DeclaredNames(const SourceFile& f,
                                    const std::vector<const Token*>& toks) {
  std::set<std::string> names;
  for (size_t i = 0; i < toks.size() && i < f.tok_flags.size(); ++i) {
    if ((f.tok_flags[i] & kNsScope) == 0 || (f.tok_flags[i] & kPp) != 0) {
      continue;
    }
    const Token* t = toks[i];
    if (t->kind != TokKind::kIdent) continue;
    if (t->text == "class" || t->text == "struct" || t->text == "enum") {
      size_t j = i + 1;
      if (j < toks.size() && IsIdent(toks[j], "class")) ++j;  // enum class
      if (j + 1 < toks.size() && toks[j]->kind == TokKind::kIdent &&
          IsPascalCase(toks[j]->text) &&
          (IsPunct(toks[j + 1], "{") || IsPunct(toks[j + 1], ":") ||
           IsIdent(toks[j + 1], "final"))) {
        names.insert(toks[j]->text);
      }
    } else if (t->text == "using" && i + 2 < toks.size() &&
               toks[i + 1]->kind == TokKind::kIdent &&
               IsPascalCase(toks[i + 1]->text) &&
               IsPunct(toks[i + 2], "=")) {
      names.insert(toks[i + 1]->text);
    } else if (IsPascalCase(t->text) && i + 1 < toks.size() &&
               IsPunct(toks[i + 1], "(") && i > 0 &&
               (toks[i - 1]->kind == TokKind::kIdent ||
                IsPunct(toks[i - 1], ">") || IsPunct(toks[i - 1], "&") ||
                IsPunct(toks[i - 1], "*"))) {
      // Free function with a preceding return type. Method definitions
      // (Class::Method) have '::' before the name and are skipped.
      names.insert(t->text);
    }
  }
  for (const std::string& raw : f.lines) {
    const std::string t = Trim(raw);
    if (!StartsWith(t, "#define")) continue;
    std::istringstream words(t.substr(7));
    std::string name;
    words >> name;
    const size_t paren = name.find('(');
    if (paren != std::string::npos) name = name.substr(0, paren);
    if (IsMacroName(name)) names.insert(name);
  }
  return names;
}

void CheckTransitiveIncludes(std::vector<SourceFile>& files) {
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& f : files) by_rel[f.rel] = &f;

  // name -> providing src/ header (unique providers only).
  std::map<std::string, std::string> provider;
  std::set<std::string> ambiguous;
  std::map<std::string, std::set<std::string>> declared;
  for (const SourceFile& f : files) {
    declared[f.rel] = DeclaredNames(f, CodeTokens(f));
    if (!f.is_header || !f.InDir("src/")) continue;
    for (const std::string& name : declared[f.rel]) {
      auto [it, inserted] = provider.emplace(name, f.rel);
      if (!inserted && it->second != f.rel) ambiguous.insert(name);
    }
  }
  for (const std::string& name : ambiguous) provider.erase(name);

  // Transitive closure of project includes, memoized.
  std::map<std::string, std::set<std::string>> reach_memo;
  std::function<const std::set<std::string>&(const std::string&)> reach =
      [&](const std::string& rel) -> const std::set<std::string>& {
    auto it = reach_memo.find(rel);
    if (it != reach_memo.end()) return it->second;
    reach_memo[rel];  // seed the memo first so include cycles terminate
    const auto file_it = by_rel.find(rel);
    if (file_it == by_rel.end()) return reach_memo[rel];
    std::vector<std::string> direct;
    for (const IncludeDirective& inc : file_it->second->includes) {
      if (!inc.resolved.empty()) direct.push_back(inc.resolved);
    }
    for (const std::string& d : direct) {
      reach_memo[rel].insert(d);
      const std::set<std::string> sub = reach(d);  // copy: memo may grow
      reach_memo[rel].insert(sub.begin(), sub.end());
    }
    return reach_memo[rel];
  };

  for (SourceFile& f : files) {
    std::set<std::string> direct;
    for (const IncludeDirective& inc : f.includes) {
      if (!inc.resolved.empty()) direct.insert(inc.resolved);
    }
    const std::set<std::string> reachable = reach(f.rel);
    const std::vector<const Token*> toks = CodeTokens(f);
    const std::set<std::string>& own = declared[f.rel];
    std::set<std::string> reported;  // one finding per missing header
    for (size_t i = 0; i < toks.size() && i < f.tok_flags.size(); ++i) {
      if ((f.tok_flags[i] & kPp) != 0) continue;
      const Token* t = toks[i];
      if (t->kind != TokKind::kIdent) continue;
      if (i > 0 &&
          (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
        continue;  // member access: not a use of the global name
      }
      const auto p = provider.find(t->text);
      if (p == provider.end()) continue;
      const std::string& hdr = p->second;
      if (hdr == f.rel || own.count(t->text) > 0) continue;
      if (direct.count(hdr) > 0 || reported.count(hdr) > 0) continue;
      // Only flag reliance on a *transitive* include: if the provider is
      // not reachable at all, the name is a coincidental local.
      if (reachable.count(hdr) == 0) continue;
      reported.insert(hdr);
      Report(f.rel, t->line, "transitive-include",
             "uses '" + t->text + "' from " + hdr +
                 " without including it directly (currently reached "
                 "transitively); add the include or run --fix",
             hdr);
    }
  }
}

// ---------------------------------------------------------------------------
// Include-order rule
// ---------------------------------------------------------------------------

/// A contiguous run of quoted project-include lines.
struct IncludeBlock {
  size_t first_idx = 0;  // index into f.includes
  size_t count = 0;
};

std::vector<IncludeBlock> ProjectIncludeBlocks(const SourceFile& f) {
  std::vector<IncludeBlock> blocks;
  for (size_t i = 0; i < f.includes.size(); ++i) {
    if (f.includes[i].angled || f.includes[i].resolved.empty()) continue;
    if (!blocks.empty()) {
      const IncludeDirective& prev =
          f.includes[blocks.back().first_idx + blocks.back().count - 1];
      if (f.includes[i].line == prev.line + 1) {
        ++blocks.back().count;
        continue;
      }
    }
    blocks.push_back({i, 1});
  }
  return blocks;
}

/// The include-path a .cc's own header goes by ("core/trainer.h" for
/// src/core/trainer.cc), or "" when there is none.
std::string OwnHeaderPath(const SourceFile& f) {
  if (!f.is_source) return "";
  std::string h = f.rel.substr(0, f.rel.size() - 3) + ".h";
  if (StartsWith(h, "src/")) h = h.substr(4);
  return h;
}

void CheckIncludeOrder(const SourceFile& f) {
  const std::string own = OwnHeaderPath(f);
  bool first_block = true;
  for (const IncludeBlock& b : ProjectIncludeBlocks(f)) {
    std::vector<std::string> paths;
    for (size_t k = 0; k < b.count; ++k) {
      paths.push_back(f.includes[b.first_idx + k].path);
    }
    // The own header may (and should) lead the first block out of order.
    size_t begin = 0;
    if (first_block && !own.empty() && !paths.empty() && paths[0] == own) {
      begin = 1;
    }
    first_block = false;
    for (size_t k = begin + 1; k < paths.size(); ++k) {
      if (paths[k] < paths[k - 1]) {
        Report(f.rel, f.includes[b.first_idx + k].line, "include-order",
               "project include block is not sorted ('" + paths[k] +
                   "' after '" + paths[k - 1] +
                   "'); sort it or run --fix");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dependency-graph export
// ---------------------------------------------------------------------------

void WriteGraphJson(const std::string& path, const LayerManifest& manifest,
                    const ModuleGraph& graph) {
  std::ofstream out(path);
  out << "{\n  \"modules\": [\n";
  bool first = true;
  for (const std::string& m : graph.modules) {
    const auto it = manifest.layer_of.find(m);
    out << (first ? "" : ",\n") << "    {\"name\": \"" << m
        << "\", \"layer\": "
        << (it == manifest.layer_of.end() ? -1 : it->second) << "}";
    first = false;
  }
  out << "\n  ],\n  \"edges\": [\n";
  first = true;
  for (const auto& [edge, count] : graph.edge_count) {
    out << (first ? "" : ",\n") << "    {\"from\": \"" << edge.first
        << "\", \"to\": \"" << edge.second << "\", \"includes\": " << count
        << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
}

void WriteGraphDot(const std::string& path, const LayerManifest& manifest,
                   const ModuleGraph& graph) {
  std::ofstream out(path);
  out << "digraph gnndm_modules {\n  rankdir=BT;\n"
      << "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (size_t l = 0; l < manifest.layers.size(); ++l) {
    out << "  { rank=same;";
    for (const std::string& m : manifest.layers[l]) {
      if (graph.modules.count(m) > 0) out << " \"" << m << "\";";
    }
    out << " }  // layer " << l << "\n";
  }
  for (const auto& [edge, count] : graph.edge_count) {
    out << "  \"" << edge.first << "\" -> \"" << edge.second
        << "\" [label=\"" << count << "\"];\n";
  }
  out << "}\n";
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Source lines with comments and string/char literal bodies blanked,
/// reconstructed from the token stream (used by line-shape heuristics).
std::vector<std::string> BlankedLines(const SourceFile& f) {
  std::vector<std::string> code = f.lines;
  // Blank everything, then re-project non-comment/non-string tokens that
  // fit on a single line. Multi-line tokens (block comments, raw
  // strings) simply stay blank — exactly what the heuristics want.
  for (auto& line : code) line.assign(line.size(), ' ');
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kComment || t.kind == TokKind::kString ||
        t.kind == TokKind::kChar) {
      continue;
    }
    if (t.line == 0 || t.line > f.lines.size()) continue;
    const std::string& orig = f.lines[t.line - 1];
    const size_t at = orig.find(t.text);
    if (at != std::string::npos && at + t.text.size() <= code[t.line - 1].size()) {
      code[t.line - 1].replace(at, t.text.size(), t.text);
    }
  }
  return code;
}

SourceFile LoadFile(const fs::path& path, const fs::path& root,
                    const std::string& rel_override = "") {
  SourceFile f;
  f.rel = rel_override.empty()
              ? fs::relative(path, root).generic_string()
              : rel_override;
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  f.contents = buffer.str();
  {
    std::string line;
    std::istringstream stream(f.contents);
    while (std::getline(stream, line)) f.lines.push_back(line);
  }
  f.tokens = Lex(f.contents);
  f.code = BlankedLines(f);
  f.is_header = path.extension() == ".h";
  f.is_source = path.extension() == ".cc";
  f.module = ModuleOf(f.rel);
  CollectIncludes(f, root);
  f.tok_flags = ScanScopes(f, CodeTokens(f), PreprocessorLines(f.lines));
  return f;
}

// ---------------------------------------------------------------------------
// metric-name-registry: instrument names come from telemetry_names.h
// ---------------------------------------------------------------------------

/// Repo pass: every GetCounter/GetGauge/GetHistogram call in src/ and
/// bench/ must name its instrument through a constant (or the sanctioned
/// builder function) declared in src/common/telemetry_names.h. A raw
/// string literal, or a k-prefixed identifier the registry does not
/// declare, silently forks the series on a typo — so both fail lint.
/// telemetry.{h,cc} themselves (the registry implementation) and
/// telemetry_names.h are exempt; variables and parameters that forward a
/// registered name are accepted as-is.
void CheckMetricNameRegistry(const std::vector<SourceFile>& files) {
  const SourceFile* registry = nullptr;
  for (const SourceFile& f : files) {
    if (f.rel == "src/common/telemetry_names.h") registry = &f;
  }
  if (registry == nullptr) return;
  // Registered constants: `... char kName[] = "..."`. Registered builder
  // functions: `std::string Name(...)` declared in the registry header.
  std::set<std::string> constants;
  std::set<std::string> builders;
  const std::vector<const Token*> reg = CodeTokens(*registry);
  for (size_t i = 0; i + 2 < reg.size(); ++i) {
    if (IsIdent(reg[i], "char") && reg[i + 1]->kind == TokKind::kIdent &&
        IsPunct(reg[i + 2], "[")) {
      constants.insert(reg[i + 1]->text);
    }
    if (IsStdQualified(reg, i, "string") && i + 4 < reg.size() &&
        reg[i + 3]->kind == TokKind::kIdent && IsPunct(reg[i + 4], "(")) {
      builders.insert(reg[i + 3]->text);
    }
  }
  for (const SourceFile& f : files) {
    if (!f.InDir("src/") && !f.InDir("bench/")) continue;
    if (f.rel == "src/common/telemetry.h" ||
        f.rel == "src/common/telemetry.cc" ||
        f.rel == "src/common/telemetry_names.h") {
      continue;
    }
    const std::vector<const Token*> toks = CodeTokens(f);
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(IsIdent(toks[i], "GetCounter") || IsIdent(toks[i], "GetGauge") ||
            IsIdent(toks[i], "GetHistogram")) ||
          !IsPunct(toks[i + 1], "(")) {
        continue;
      }
      // Skip the declarations themselves (`Counter& GetCounter(...)`):
      // a declaration's first argument token is a type name followed by
      // more idents, which the checks below already accept — but a
      // `const` right after the paren is a sure declaration marker.
      const size_t arg = i + 2;
      if (toks[arg]->kind == TokKind::kString) {
        Report(f, toks[arg]->line, "metric-name-registry",
               "instrument name is a raw string literal; use a constant "
               "from src/common/telemetry_names.h so typos fail lint "
               "instead of forking the series");
        continue;
      }
      // Resolve a possibly qualified identifier chain to its last name.
      size_t j = arg;
      while (j + 2 < toks.size() && toks[j]->kind == TokKind::kIdent &&
             IsPunct(toks[j + 1], "::")) {
        j += 2;
      }
      if (toks[j]->kind != TokKind::kIdent) continue;
      const std::string& name = toks[j]->text;
      if (name.size() >= 2 && name[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(name[1])) &&
          constants.count(name) == 0 && builders.count(name) == 0) {
        Report(f, toks[j]->line, "metric-name-registry",
               "'" + name +
                   "' is not declared in src/common/telemetry_names.h; "
                   "add it to the registry (or fix the typo)");
      }
    }
  }
}

void RunFileRules(const SourceFile& f) {
  const std::vector<const Token*> toks = CodeTokens(f);
  CheckIncludeGuard(f);
  CheckConcurrencyPrimitives(f, toks);
  CheckBatchPlane(f, toks);
  CheckAssert(f, toks);
  CheckDeserializationValidates(f, toks);
  CheckRawLoopKernels(f);
  CheckTimerUse(f, toks);
  CheckUnorderedIteration(f, toks);
  CheckRawRng(f, toks);
  CheckSimdIsolation(f, toks);
  CheckThreadIdInStats(f, toks);
  CheckFloatAccumInParallel(f, toks);
  CheckHotPathAlloc(f, toks, f.tok_flags);
  CheckIncludeOrder(f);
}

/// Apply suppressions globally (repo passes report into the including
/// file, so a suppression on the offending line covers them too), then
/// flag the ones nothing needed.
void ApplySuppressions(
    std::map<std::string, std::vector<Suppression>>& sups) {
  std::vector<Finding> kept;
  for (Finding& v : g_violations) {
    bool suppressed = false;
    auto it = sups.find(v.file);
    if (it != sups.end()) {
      for (Suppression& s : it->second) {
        if (s.rule == v.rule &&
            (s.line == v.line || s.line + 1 == v.line)) {
          s.used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) kept.push_back(v);
  }
  g_violations = std::move(kept);
  for (auto& [rel, list] : sups) {
    for (const Suppression& s : list) {
      if (!s.used) {
        Report(rel, s.line, "unused-suppression",
               "suppression of '" + s.rule +
                   "' matches no finding on this or the next line; "
                   "delete it or move it to the offending line");
      }
    }
  }
}

void SortFindings() {
  std::sort(g_violations.begin(), g_violations.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

void AnalyzeRepo(std::vector<SourceFile>& files, const fs::path& root,
                 LayerManifest* manifest_out, ModuleGraph* graph_out) {
  g_violations.clear();
  std::map<std::string, std::vector<Suppression>> sups;
  for (SourceFile& f : files) {
    sups[f.rel] = CollectSuppressions(f);
    RunFileRules(f);
  }
  LayerManifest manifest = LoadLayerManifest(root);
  ModuleGraph graph = BuildModuleGraph(files);
  CheckLayering(files, manifest, graph);
  CheckTransitiveIncludes(files);
  CheckMetricNameRegistry(files);
  ApplySuppressions(sups);
  SortFindings();
  if (manifest_out != nullptr) *manifest_out = std::move(manifest);
  if (graph_out != nullptr) *graph_out = std::move(graph);
}

// ---------------------------------------------------------------------------
// --fix: mechanical rewrites for guard / direct-include / ordering
// ---------------------------------------------------------------------------

/// The include-line text a repo-relative header goes by in this tree
/// (quoted paths are rooted at src/).
std::string IncludeSpelling(const std::string& resolved) {
  return StartsWith(resolved, "src/") ? resolved.substr(4) : resolved;
}

/// Rewrites `lines` in place: inserts the missing include guard, adds
/// the missing direct includes, and re-sorts every project-include
/// block. Returns true if anything changed.
bool FixFileLines(const SourceFile& f, const std::set<std::string>& add,
                  bool fix_guard, const fs::path& root,
                  std::vector<std::string>& lines) {
  const std::vector<std::string> before = lines;

  auto is_project_include = [&](const std::string& raw,
                                std::string* path_out) {
    const std::string t = Trim(raw);
    if (!StartsWith(t, "#include \"")) return false;
    const size_t e = t.find('"', 10);
    if (e == std::string::npos) return false;
    const std::string p = t.substr(10, e - 10);
    if (!fs::exists(root / "src" / p) && !fs::exists(root / p) &&
        !fs::exists(root / fs::path(f.rel).parent_path() / p)) {
      return false;
    }
    if (path_out != nullptr) *path_out = p;
    return true;
  };

  if (fix_guard && f.is_header) {
    const std::string guard = ExpectedGuard(f.rel);
    // After the leading comment block, before the first code line.
    size_t at = 0;
    while (at < lines.size() &&
           (Trim(lines[at]).empty() || StartsWith(Trim(lines[at]), "//"))) {
      ++at;
    }
    lines.insert(lines.begin() + static_cast<long>(at),
                 {"#ifndef " + guard, "#define " + guard, ""});
    while (!lines.empty() && Trim(lines.back()).empty()) lines.pop_back();
    lines.push_back("");
    lines.push_back("#endif  // " + guard);
  }

  if (!add.empty()) {
    // Insert into the last project-include block that isn't just the own
    // header; create a fresh block if there is none.
    std::vector<std::pair<size_t, size_t>> blocks;  // [first, last] line idx
    std::string p;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!is_project_include(lines[i], &p)) continue;
      if (!blocks.empty() && blocks.back().second + 1 == i) {
        blocks.back().second = i;
      } else {
        blocks.emplace_back(i, i);
      }
    }
    const std::string own = OwnHeaderPath(f);
    size_t insert_at = 0;
    bool found = false;
    for (size_t b = blocks.size(); b-- > 0;) {
      const auto [first, last] = blocks[b];
      std::string only;
      if (first == last && is_project_include(lines[first], &only) &&
          only == own && blocks.size() > 1) {
        continue;  // the lone own-header line stays its own block
      }
      insert_at = last + 1;
      found = true;
      break;
    }
    std::vector<std::string> newlines;
    for (const std::string& hdr : add) {
      newlines.push_back("#include \"" + IncludeSpelling(hdr) + "\"");
    }
    if (!found) {
      // No project block: after the last include line of any kind, or
      // after the guard's #define in an include-less header.
      size_t after = 0;
      bool have = false;
      for (size_t i = 0; i < lines.size(); ++i) {
        if (StartsWith(Trim(lines[i]), "#include") ||
            StartsWith(Trim(lines[i]), "#define " + ExpectedGuard(f.rel))) {
          after = i + 1;
          have = true;
        }
      }
      if (!have) after = 0;
      newlines.insert(newlines.begin(), "");
      lines.insert(lines.begin() + static_cast<long>(after),
                   newlines.begin(), newlines.end());
    } else {
      lines.insert(lines.begin() + static_cast<long>(insert_at),
                   newlines.begin(), newlines.end());
    }
  }

  // Re-sort every project block (own header pinned first in the first).
  {
    std::vector<std::pair<size_t, size_t>> blocks;
    std::string p;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!is_project_include(lines[i], &p)) continue;
      if (!blocks.empty() && blocks.back().second + 1 == i) {
        blocks.back().second = i;
      } else {
        blocks.emplace_back(i, i);
      }
    }
    const std::string own = OwnHeaderPath(f);
    for (size_t b = 0; b < blocks.size(); ++b) {
      const auto [first, last] = blocks[b];
      std::vector<std::string> blk(lines.begin() + static_cast<long>(first),
                                   lines.begin() + static_cast<long>(last) +
                                       1);
      std::sort(blk.begin(), blk.end(),
                [&](const std::string& x, const std::string& y) {
                  std::string px, py;
                  is_project_include(x, &px);
                  is_project_include(y, &py);
                  if (b == 0 && !own.empty()) {
                    if (px == own) return py != own;
                    if (py == own) return false;
                  }
                  return px < py;
                });
      blk.erase(std::unique(blk.begin(), blk.end()), blk.end());
      lines.erase(lines.begin() + static_cast<long>(first),
                  lines.begin() + static_cast<long>(last) + 1);
      lines.insert(lines.begin() + static_cast<long>(first), blk.begin(),
                   blk.end());
    }
  }
  return lines != before;
}

/// Applies every mechanical fix implied by the current findings and
/// writes the changed files. Returns the number of files rewritten.
size_t ApplyFixes(const std::vector<SourceFile>& files,
                  const fs::path& root) {
  std::map<std::string, std::set<std::string>> add_include;
  std::set<std::string> resort;
  std::set<std::string> add_guard;
  for (const Finding& v : g_violations) {
    if (v.rule == "transitive-include" && !v.fix_path.empty()) {
      add_include[v.file].insert(v.fix_path);
    } else if (v.rule == "include-order") {
      resort.insert(v.file);
    } else if (v.rule == "include-guard") {
      add_guard.insert(v.file);
    }
  }
  size_t fixed = 0;
  for (const SourceFile& f : files) {
    const bool want = add_include.count(f.rel) > 0 ||
                      resort.count(f.rel) > 0 || add_guard.count(f.rel) > 0;
    if (!want) continue;
    std::vector<std::string> lines = f.lines;
    if (!FixFileLines(f, add_include[f.rel], add_guard.count(f.rel) > 0,
                      root, lines)) {
      continue;
    }
    std::ofstream out(root / f.rel);
    for (const std::string& line : lines) out << line << "\n";
    ++fixed;
  }
  return fixed;
}

void PrintFindings() {
  for (const auto& v : g_violations) {
    if (v.line == 0) {
      std::fprintf(stderr, "%s: [%s] %s\n", v.file.c_str(), v.rule.c_str(),
                   v.message.c_str());
    } else {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                   v.rule.c_str(), v.message.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg, graph_json, graph_dot;
  bool fix = false;
  std::vector<std::string> fixtures;
  bool fixture_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fix") {
      fix = true;
    } else if (a == "--fixture") {
      fixture_mode = true;
    } else if (StartsWith(a, "--graph-json=")) {
      graph_json = a.substr(13);
    } else if (StartsWith(a, "--graph-dot=")) {
      graph_dot = a.substr(12);
    } else if (fixture_mode) {
      fixtures.push_back(a);
    } else if (root_arg.empty()) {
      root_arg = a;
    } else {
      std::fprintf(stderr, "gnndm_lint: unexpected argument '%s'\n",
                   a.c_str());
      return 2;
    }
  }

  if (fixture_mode) {
    // Golden-file harness: lint each file in isolation under a synthetic
    // src/ path (so src/-scoped rules apply), print deterministic
    // findings to stdout, always exit 0 — the goldens diff the output.
    for (const std::string& path : fixtures) {
      g_violations.clear();
      const fs::path p = path;
      SourceFile f = LoadFile(p, p.parent_path(),
                              "src/lint_fixture/" +
                                  p.filename().generic_string());
      std::map<std::string, std::vector<Suppression>> sups;
      sups[f.rel] = CollectSuppressions(f);
      RunFileRules(f);
      ApplySuppressions(sups);
      SortFindings();
      for (const auto& v : g_violations) {
        if (v.line == 0) {
          std::printf("%s: [%s] %s\n", v.file.c_str(), v.rule.c_str(),
                      v.message.c_str());
        } else {
          std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                      v.rule.c_str(), v.message.c_str());
        }
      }
    }
    return 0;
  }

  if (root_arg.empty()) {
    std::fprintf(stderr,
                 "usage: gnndm_lint <repo_root> [--graph-json=P] "
                 "[--graph-dot=P] [--fix]\n"
                 "       gnndm_lint --fixture <file>...\n");
    return 2;
  }
  const fs::path root = root_arg;

  auto load_all = [&](std::vector<SourceFile>& files) -> bool {
    files.clear();
    for (const char* dir : {"src", "tests", "bench", "tools"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) {
        // src/ is the wrong-root guard; the rest are optional so reduced
        // trees (fix-idempotency test fixtures) still lint.
        if (std::string(dir) == "src") {
          std::fprintf(stderr, "gnndm_lint: missing directory %s\n",
                       base.string().c_str());
          return false;
        }
        continue;
      }
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const auto ext = entry.path().extension();
        if (ext != ".h" && ext != ".cc") continue;
        const std::string rel =
            fs::relative(entry.path(), root).generic_string();
        // The linter's own sources discuss the suppression grammar and
        // rule tokens in doc comments, and the fixture corpus is
        // deliberate violations; neither is repo code to lint.
        if (rel == "tools/gnndm_lint.cc") continue;
        if (StartsWith(rel, "tests/lint_fixtures/")) continue;
        files.push_back(LoadFile(entry.path(), root));
      }
    }
    return true;
  };

  std::vector<SourceFile> files;
  if (!load_all(files)) return 2;
  LayerManifest manifest;
  ModuleGraph graph;
  AnalyzeRepo(files, root, &manifest, &graph);

  if (fix) {
    const size_t fixed = ApplyFixes(files, root);
    std::printf("gnndm_lint: --fix rewrote %zu file(s)\n", fixed);
    if (fixed > 0) {
      if (!load_all(files)) return 2;
      AnalyzeRepo(files, root, &manifest, &graph);
    }
  }

  if (!graph_json.empty()) WriteGraphJson(graph_json, manifest, graph);
  if (!graph_dot.empty()) WriteGraphDot(graph_dot, manifest, graph);

  PrintFindings();
  std::printf("gnndm_lint: %zu files scanned, %zu violation(s)\n",
              files.size(), g_violations.size());
  return g_violations.empty() ? 0 : 1;
}
