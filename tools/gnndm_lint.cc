// gnndm_lint — repo-specific static checks, registered as a ctest so a
// violation fails the build. Usage:
//
//   $ gnndm_lint <repo_root>
//
// Rules (each reports file:line and a fix hint):
//   include-guard         .h files use GNNDM_<PATH>_H_ guards
//   raw-lock              std::mutex & friends only inside the annotated
//                         wrappers (src/common/annotations.h); everything
//                         else must use gnndm::Mutex / MutexLock / CondVar
//                         so Clang Thread Safety Analysis sees it
//   raw-thread            std::thread in src/ only in the audited
//                         concurrency surfaces (ThreadPool, BatchSource)
//   batch-plane           batch production stays unified behind
//                         MakeBatchSource: src/ code outside
//                         src/core/batch_source.{h,cc} must not name the
//                         producer-thread implementation directly; mark
//                         exceptions `// batch-plane-ok: <reason>`
//   assert-in-cc          assert() in non-test .cc files — use GNNDM_DCHECK /
//                         GNNDM_CHECK, which log and honor sanitizer builds
//   deserialize-validate  .cc files that parse binary input must call a
//                         Validate() routine on what they decoded
//   raw-loop-kernel       nested (kernel-shaped) top-level loops in
//                         src/tensor and src/nn must use ParallelFor or
//                         carry a `// serial-ok: <reason>` marker
//   raw-timer             direct WallTimer use in src/core, src/transfer,
//                         src/sampling escapes the telemetry stage
//                         breakdown; use TRACE_SPAN or mark the line
//                         `// timer-ok: <reason>`
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  size_t line;  // 0 = whole-file
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void Report(const std::string& file, size_t line, const std::string& rule,
            const std::string& message) {
  g_violations.push_back({file, line, rule, message});
}

/// Path relative to the repo root, with '/' separators.
std::string RelPath(const fs::path& path, const fs::path& root) {
  return fs::relative(path, root).generic_string();
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Strips // comments so tokens mentioned in prose don't trip the rules.
std::string StripLineComment(const std::string& line) {
  size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

/// True if `token` occurs in `haystack` not preceded by an identifier
/// character (rejects e.g. static_assert when searching for assert().
bool ContainsToken(const std::string& haystack, const std::string& token) {
  size_t pos = 0;
  while ((pos = haystack.find(token, pos)) != std::string::npos) {
    const bool boundary =
        pos == 0 || (!std::isalnum(static_cast<unsigned char>(
                         haystack[pos - 1])) &&
                     haystack[pos - 1] != '_');
    if (boundary) return true;
    pos += token.size();
  }
  return false;
}

/// GNNDM_<PATH>_H_ with the leading src/ stripped, matching the existing
/// style: src/common/status.h -> GNNDM_COMMON_STATUS_H_ and
/// bench/bench_util.h -> GNNDM_BENCH_BENCH_UTIL_H_.
std::string ExpectedGuard(const std::string& rel) {
  std::string trimmed = StartsWith(rel, "src/") ? rel.substr(4) : rel;
  std::string guard = "GNNDM_";
  for (char c : trimmed) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludeGuard(const std::string& rel,
                       const std::vector<std::string>& lines) {
  const std::string guard = ExpectedGuard(rel);
  bool has_ifndef = false, has_define = false;
  for (const auto& line : lines) {
    if (line.find("#ifndef " + guard) != std::string::npos) {
      has_ifndef = true;
    }
    if (line.find("#define " + guard) != std::string::npos) {
      has_define = true;
    }
  }
  if (!has_ifndef || !has_define) {
    Report(rel, 0, "include-guard",
           "header must use include guard " + guard);
  }
}

// std::thread is allowed only where a worker thread is genuinely owned
// and its shared state is annotated; everything else goes through
// ThreadPool. Tests may spawn raw threads to provoke races.
const std::set<std::string> kThreadAllowlist = {
    "src/common/thread_pool.h", "src/common/thread_pool.cc",
    // hardware_concurrency() only; all shared state is annotated.
    "src/common/parallel_for.cc",
    "src/core/batch_source.h", "src/core/batch_source.cc",
};

void CheckConcurrencyPrimitives(const std::string& rel,
                                const std::vector<std::string>& lines) {
  if (rel == "src/common/annotations.h") return;  // the wrapper itself
  static const char* kLockTokens[] = {
      "std::mutex",       "std::condition_variable", "std::lock_guard",
      "std::unique_lock", "std::scoped_lock",        "std::shared_mutex",
  };
  const bool thread_allowed =
      !StartsWith(rel, "src/") || kThreadAllowlist.count(rel) > 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string code = StripLineComment(lines[i]);
    for (const char* token : kLockTokens) {
      if (ContainsToken(code, token)) {
        Report(rel, i + 1, "raw-lock",
               std::string(token) +
                   " bypasses thread-safety analysis; use gnndm::Mutex / "
                   "MutexLock / CondVar from common/annotations.h");
      }
    }
    if (!thread_allowed && ContainsToken(code, "std::thread")) {
      Report(rel, i + 1, "raw-thread",
             "std::thread outside the audited concurrency surfaces; "
             "use ThreadPool or add the file to the lint allowlist "
             "after annotating its shared state");
    }
  }
}

/// True if `line` is `for` at an indent of at least `min_indent` spaces.
bool IsForAtIndent(const std::string& line, size_t min_indent) {
  size_t p = 0;
  while (p < line.size() && line[p] == ' ') ++p;
  return p >= min_indent && line.compare(p, 5, "for (") == 0;
}

/// Hot-kernel loops in src/tensor and src/nn must go through the
/// ParallelFor work-sharing layer (common/parallel_for.h). The heuristic:
/// a function-top-level `for` (exactly 2-space indent in this codebase)
/// that contains a nested loop is a kernel-shaped loop; it must either be
/// a ParallelFor body (those sit deeper inside a lambda and are never at
/// indent 2) or carry a `// serial-ok: <reason>` marker on the same line
/// or the line above. Single-level structural loops (over layers, over
/// parameters) are exempt.
void CheckRawLoopKernels(const std::string& rel,
                         const std::vector<std::string>& lines) {
  if (!StartsWith(rel, "src/tensor/") && !StartsWith(rel, "src/nn/")) {
    return;
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("  for (", 0) != 0 || lines[i][2] != 'f') continue;
    // Walk the loop body by brace depth; a one-line `for (...) stmt;`
    // has no braces and cannot nest.
    long depth = 0;
    bool nested = false;
    for (size_t j = i; j < lines.size(); ++j) {
      const std::string code = StripLineComment(lines[j]);
      if (j > i && IsForAtIndent(code, 4)) nested = true;
      for (char c : code) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (j > i && depth <= 0) break;
      if (j == i && depth == 0) break;  // braceless one-liner
    }
    if (!nested) continue;
    const bool marked =
        lines[i].find("serial-ok") != std::string::npos ||
        (i > 0 && lines[i - 1].find("serial-ok") != std::string::npos);
    if (!marked) {
      Report(rel, i + 1, "raw-loop-kernel",
             "nested loop in a tensor/nn kernel bypasses ParallelFor "
             "(common/parallel_for.h); parallelize it or mark it "
             "'// serial-ok: <reason>'");
    }
  }
}

/// Batch production is unified behind the BatchSource plane: src/ code
/// outside src/core/batch_source.{h,cc} must not name the producer-thread
/// implementation (AsyncBatchSource) or the retired AsyncBatchLoader —
/// construct through MakeBatchSource so inline and async stay freely
/// interchangeable. Tests and benches may probe the concrete types.
/// Escape marker: `// batch-plane-ok: <reason>` on the line or the line
/// above.
void CheckBatchPlane(const std::string& rel,
                     const std::vector<std::string>& lines) {
  if (!StartsWith(rel, "src/")) return;
  if (rel == "src/core/batch_source.h" ||
      rel == "src/core/batch_source.cc") {
    return;
  }
  static const char* kPlaneTokens[] = {"AsyncBatchSource",
                                       "AsyncBatchLoader"};
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string code = StripLineComment(lines[i]);
    for (const char* token : kPlaneTokens) {
      if (!ContainsToken(code, token)) continue;
      const bool marked =
          lines[i].find("batch-plane-ok") != std::string::npos ||
          (i > 0 && lines[i - 1].find("batch-plane-ok") != std::string::npos);
      if (!marked) {
        Report(rel, i + 1, "batch-plane",
               std::string(token) +
                   " outside src/core/batch_source.{h,cc} fragments the "
                   "batch data plane; go through MakeBatchSource or mark "
                   "the line '// batch-plane-ok: <reason>'");
      }
    }
  }
}

/// The pipeline-stage directories must not time work outside the span
/// tracer: a raw WallTimer there produces numbers telemetry (and the
/// EpochStats reconciliation test) cannot see. Legitimate non-stage
/// timing (condvar waits, ad-hoc probes) carries `// timer-ok: <reason>`
/// on the same line or the line above.
void CheckTimerUse(const std::string& rel,
                   const std::vector<std::string>& lines) {
  if (!StartsWith(rel, "src/core/") && !StartsWith(rel, "src/transfer/") &&
      !StartsWith(rel, "src/sampling/")) {
    return;
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string code = StripLineComment(lines[i]);
    if (!ContainsToken(code, "WallTimer")) continue;
    const bool marked =
        lines[i].find("timer-ok") != std::string::npos ||
        (i > 0 && lines[i - 1].find("timer-ok") != std::string::npos);
    if (!marked) {
      Report(rel, i + 1, "raw-timer",
             "direct WallTimer in a pipeline-stage directory escapes the "
             "telemetry breakdown; use TRACE_SPAN(\"subsystem.name\") or "
             "mark the line '// timer-ok: <reason>'");
    }
  }
}

void CheckAssert(const std::string& rel,
                 const std::vector<std::string>& lines) {
  if (StartsWith(rel, "tests/")) return;  // gtest code may use assertions
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string code = StripLineComment(lines[i]);
    if (ContainsToken(code, "assert(")) {
      Report(rel, i + 1, "assert-in-cc",
             "assert() in non-test code vanishes under -DNDEBUG without "
             "trace; use GNNDM_DCHECK (debug) or GNNDM_CHECK (always)");
    }
  }
}

void CheckDeserializationValidates(const std::string& rel,
                                   const std::string& contents) {
  if (!StartsWith(rel, "src/")) return;
  const bool reads_binary =
      contents.find("std::ios::binary") != std::string::npos &&
      contents.find("ifstream") != std::string::npos;
  if (reads_binary && contents.find("Validate") == std::string::npos) {
    Report(rel, 0, "deserialize-validate",
           "binary deserializer must run a Validate() pass over the "
           "decoded structures before returning them");
  }
}

void LintFile(const fs::path& path, const fs::path& root) {
  const std::string rel = RelPath(path, root);
  // The linter's own rule strings contain every banned token.
  if (rel == "tools/gnndm_lint.cc") return;
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(contents);
  while (std::getline(stream, line)) lines.push_back(line);

  const bool is_header = path.extension() == ".h";
  const bool is_source = path.extension() == ".cc";
  if (is_header) CheckIncludeGuard(rel, lines);
  CheckConcurrencyPrimitives(rel, lines);
  CheckBatchPlane(rel, lines);
  if (is_source) {
    CheckAssert(rel, lines);
    CheckDeserializationValidates(rel, contents);
    CheckRawLoopKernels(rel, lines);
    CheckTimerUse(rel, lines);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gnndm_lint <repo_root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  size_t files = 0;
  for (const char* dir : {"src", "tests", "bench", "tools"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) {
      std::fprintf(stderr, "gnndm_lint: missing directory %s\n",
                   base.string().c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".h" && ext != ".cc") continue;
      LintFile(entry.path(), root);
      ++files;
    }
  }
  for (const auto& v : g_violations) {
    if (v.line == 0) {
      std::fprintf(stderr, "%s: [%s] %s\n", v.file.c_str(), v.rule.c_str(),
                   v.message.c_str());
    } else {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                   v.rule.c_str(), v.message.c_str());
    }
  }
  std::printf("gnndm_lint: %zu files scanned, %zu violation(s)\n", files,
              g_violations.size());
  return g_violations.empty() ? 0 : 1;
}
