// gnndm_lint: the repo's style/invariant linter (see DESIGN.md §11, §15).
//
//   $ gnndm_lint <repo_root> [--graph-json=<path>] [--graph-dot=<path>]
//                            [--effects-json=<path>] [--effects-dot=<path>]
//                            [--findings-json=<path>] [--bench-json=<path>]
//                            [--stats] [--fix]
//   $ gnndm_lint --fixture <file>...
//
//   --graph-json=P    write the module dependency graph (modules, layers,
//                     edges with multiplicities) as JSON
//   --graph-dot=P     write the same graph as Graphviz DOT, one cluster
//                     per layer
//   --effects-json=P  write the interprocedural effect analysis: per-
//                     function own/transitive effects, contract roots,
//                     resolved calls, and call-graph resolution stats
//   --effects-dot=P   write the effect-carrying slice of the call graph
//                     as Graphviz DOT (hot fns red, contract roots bold)
//   --findings-json=P write the findings as a JSON array (rule id, file,
//                     line, message, call chain) — the CI artifact
//   --bench-json=P    write BENCH-style self-measurement: wall time and
//                     per-pass breakdown with the bench run_meta block
//   --stats           print pass timings and call-graph resolution stats
//   --fix             apply mechanical fixes in place (missing include
//                     guards, missing direct includes, unsorted include
//                     blocks) and re-lint; --fix twice is a no-op
//                     (enforced by ctest)
//   --fixture F...    lint the given files in isolation as if they lived
//                     under src/, print findings to stdout, exit 0 — the
//                     golden-file harness
//
// The passes live in tools/lint/: lexer, scope scanner, per-file rules,
// include-graph analysis, and the call-graph + effect passes. This file
// is only the driver: flag parsing, file loading, orchestration, and the
// self-measurement plumbing.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "lint/callgraph.h"
#include "lint/effects.h"
#include "lint/include_graph.h"
#include "lint/rules.h"
#include "lint/source_file.h"

namespace gnndm_lint {
namespace {

namespace fs = std::filesystem;

struct PassTimer {
  std::vector<std::pair<std::string, double>> ms;
  std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();

  void Lap(const std::string& name) {
    const auto t1 = std::chrono::steady_clock::now();
    ms.push_back(
        {name,
         std::chrono::duration<double, std::milli>(t1 - t0).count()});
    t0 = t1;
  }
  double Total() const {
    double s = 0;
    for (const auto& [n, m] : ms) s += m;
    return s;
  }
};

void AnalyzeRepo(std::vector<SourceFile>& files, const fs::path& root,
                 LayerManifest* manifest_out, ModuleGraph* graph_out,
                 CallGraph* cg_out, PassTimer* timer) {
  ClearViolations();
  std::map<std::string, std::vector<Suppression>> sups;
  for (SourceFile& f : files) {
    sups[f.rel] = CollectSuppressions(f);
    RunFileRules(f);
  }
  if (timer != nullptr) timer->Lap("file-rules");

  LayerManifest manifest = LoadLayerManifest(root);
  ModuleGraph graph = BuildModuleGraph(files);
  CheckLayering(files, manifest, graph);
  CheckTransitiveIncludes(files);
  CheckMetricNameRegistry(files);
  if (timer != nullptr) timer->Lap("include-graph");

  CallGraph cg = BuildCallGraph(files);
  if (timer != nullptr) timer->Lap("callgraph");
  ComputeEffects(files, cg);
  if (timer != nullptr) timer->Lap("effects");
  CheckParallelContext(files, cg);
  CheckHotTransitiveAlloc(files, cg);
  if (timer != nullptr) timer->Lap("contracts");

  ApplySuppressions(sups);
  SortFindings();
  if (manifest_out != nullptr) *manifest_out = std::move(manifest);
  if (graph_out != nullptr) *graph_out = std::move(graph);
  if (cg_out != nullptr) *cg_out = std::move(cg);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
  return out;
}

void WriteFindingsJson(const std::string& path) {
  std::string out = "[";
  bool first = true;
  for (const Finding& v : Violations()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"file\": \"" + JsonEscape(v.file) + "\", \"line\": " +
           std::to_string(v.line) + ", \"rule\": \"" + JsonEscape(v.rule) +
           "\", \"message\": \"" + JsonEscape(v.message) + "\", \"chain\": [";
    bool fc = true;
    for (const std::string& hop : v.chain) {
      if (!fc) out += ", ";
      fc = false;
      out += "\"" + JsonEscape(hop) + "\"";
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n]\n";
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (fp == nullptr) {
    std::fprintf(stderr, "gnndm_lint: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), fp);
  std::fclose(fp);
}

void WriteBenchJson(const std::string& path, const gnndm::Flags& flags,
                    const PassTimer& timer, const CallGraphStats& st,
                    size_t files, size_t findings) {
  char buf[64];
  std::string out = "{\n  \"bench\": \"lint\",\n  \"run_meta\": " +
                    gnndm::bench::RunMetaJson(flags) + ",\n";
  std::snprintf(buf, sizeof(buf), "%.1f", timer.Total());
  out += "  \"wall_ms\": " + std::string(buf) + ",\n  \"passes\": {";
  bool first = true;
  for (const auto& [name, m] : timer.ms) {
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf), "%.1f", m);
    out += "\"" + name + "\": " + buf;
  }
  out += "},\n";
  out += "  \"files\": " + std::to_string(files) + ",\n";
  out += "  \"findings\": " + std::to_string(findings) + ",\n";
  out += "  \"callgraph\": {\"functions\": " + std::to_string(st.functions) +
         ", \"lambdas\": " + std::to_string(st.lambdas) +
         ", \"src_call_sites\": " + std::to_string(st.src_call_sites) +
         ", \"resolved_repo\": " + std::to_string(st.resolved_repo) +
         ", \"external\": " + std::to_string(st.external) +
         ", \"callable_param\": " + std::to_string(st.callable_param) +
         ", \"unresolved\": " + std::to_string(st.unresolved) + "}\n}\n";
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (fp == nullptr) {
    std::fprintf(stderr, "gnndm_lint: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), fp);
  std::fclose(fp);
}

void PrintStats(const PassTimer& timer, const CallGraph& g,
                const std::vector<SourceFile>& files) {
  const CallGraphStats& st = g.stats;
  std::printf("gnndm_lint stats:\n");
  for (const auto& [name, m] : timer.ms) {
    std::printf("  pass %-14s %8.1f ms\n", name.c_str(), m);
  }
  const size_t total = st.src_call_sites;
  const size_t resolved = total - st.unresolved;
  std::printf("  functions %zu (+ %zu lambdas)\n", st.functions, st.lambdas);
  std::printf(
      "  src call sites %zu: repo %zu, external %zu, callable %zu, "
      "unresolved %zu (%.1f%% resolved)\n",
      total, st.resolved_repo, st.external, st.callable_param, st.unresolved,
      total == 0 ? 100.0 : 100.0 * static_cast<double>(resolved) /
                               static_cast<double>(total));
  // Every unresolved site, grouped by name — the worklist for growing
  // the resolver (or the external allowlist).
  std::map<std::string, std::vector<std::string>> unresolved;
  for (const CallSite& s : g.sites) {
    if (s.kind != CallKind::kUnresolved) continue;
    const FunctionInfo& fn = g.fns[s.caller];
    unresolved[s.name].push_back(files[fn.file].rel + ":" +
                                 std::to_string(s.line));
  }
  for (const auto& [name, where] : unresolved) {
    std::string locs;
    for (size_t i = 0; i < where.size() && i < 4; ++i) {
      locs += (i != 0 ? " " : "") + where[i];
    }
    if (where.size() > 4) locs += " ...";
    std::printf("  unresolved %-24s x%-3zu %s\n", name.c_str(), where.size(),
                locs.c_str());
  }
}

int Run(int argc, char** argv) {
  std::string root_arg, graph_json, graph_dot, effects_json, effects_dot,
      findings_json, bench_json;
  bool fix = false, stats = false;
  std::vector<std::string> fixtures;
  bool fixture_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fix") {
      fix = true;
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--fixture") {
      fixture_mode = true;
    } else if (StartsWith(a, "--graph-json=")) {
      graph_json = a.substr(13);
    } else if (StartsWith(a, "--graph-dot=")) {
      graph_dot = a.substr(12);
    } else if (StartsWith(a, "--effects-json=")) {
      effects_json = a.substr(15);
    } else if (StartsWith(a, "--effects-dot=")) {
      effects_dot = a.substr(14);
    } else if (StartsWith(a, "--findings-json=")) {
      findings_json = a.substr(16);
    } else if (StartsWith(a, "--bench-json=")) {
      bench_json = a.substr(13);
    } else if (fixture_mode) {
      fixtures.push_back(a);
    } else if (root_arg.empty()) {
      root_arg = a;
    } else {
      std::fprintf(stderr, "gnndm_lint: unexpected argument '%s'\n",
                   a.c_str());
      return 2;
    }
  }

  if (fixture_mode) {
    // Golden-file harness: lint each file in isolation under a synthetic
    // src/ path (so src/-scoped rules and the effect contracts apply),
    // print deterministic findings to stdout, always exit 0 — the
    // goldens diff the output.
    for (const std::string& path : fixtures) {
      ClearViolations();
      const fs::path p = path;
      std::vector<SourceFile> files;
      files.push_back(LoadFile(p, p.parent_path(),
                               "src/lint_fixture/" +
                                   p.filename().generic_string()));
      SourceFile& f = files.back();
      std::map<std::string, std::vector<Suppression>> sups;
      sups[f.rel] = CollectSuppressions(f);
      RunFileRules(f);
      CallGraph cg = BuildCallGraph(files);
      ComputeEffects(files, cg);
      CheckParallelContext(files, cg);
      CheckHotTransitiveAlloc(files, cg);
      ApplySuppressions(sups);
      SortFindings();
      PrintFindings(stdout);
    }
    return 0;
  }

  if (root_arg.empty()) {
    std::fprintf(stderr,
                 "usage: gnndm_lint <repo_root> [--graph-json=P] "
                 "[--graph-dot=P] [--effects-json=P] [--effects-dot=P] "
                 "[--findings-json=P] [--bench-json=P] [--stats] [--fix]\n"
                 "       gnndm_lint --fixture <file>...\n");
    return 2;
  }
  const fs::path root = root_arg;

  auto load_all = [&](std::vector<SourceFile>& files) -> bool {
    files.clear();
    for (const char* dir : {"src", "tests", "bench", "tools"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) {
        // src/ is the wrong-root guard; the rest are optional so reduced
        // trees (fix-idempotency test fixtures) still lint.
        if (std::string(dir) == "src") {
          std::fprintf(stderr, "gnndm_lint: missing directory %s\n",
                       base.string().c_str());
          return false;
        }
        continue;
      }
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const auto ext = entry.path().extension();
        if (ext != ".h" && ext != ".cc") continue;
        const std::string rel =
            fs::relative(entry.path(), root).generic_string();
        // The linter's own sources discuss the suppression grammar and
        // rule tokens in doc comments, and the fixture corpus is
        // deliberate violations; neither is repo code to lint.
        if (rel == "tools/gnndm_lint.cc") continue;
        if (StartsWith(rel, "tools/lint/")) continue;
        if (StartsWith(rel, "tests/lint_fixtures/")) continue;
        files.push_back(LoadFile(entry.path(), root));
      }
    }
    // Directory iteration order is filesystem-dependent; exports must be
    // byte-stable across runs and machines.
    std::sort(files.begin(), files.end(),
              [](const SourceFile& a, const SourceFile& b) {
                return a.rel < b.rel;
              });
    return true;
  };

  std::vector<SourceFile> files;
  if (!load_all(files)) return 2;
  LayerManifest manifest;
  ModuleGraph graph;
  CallGraph cg;
  PassTimer timer;
  AnalyzeRepo(files, root, &manifest, &graph, &cg, &timer);

  if (fix) {
    const size_t fixed = ApplyFixes(files, root);
    std::printf("gnndm_lint: --fix rewrote %zu file(s)\n", fixed);
    if (fixed > 0) {
      if (!load_all(files)) return 2;
      timer = PassTimer();
      AnalyzeRepo(files, root, &manifest, &graph, &cg, &timer);
    }
  }

  if (!graph_json.empty()) WriteGraphJson(graph_json, manifest, graph);
  if (!graph_dot.empty()) WriteGraphDot(graph_dot, manifest, graph);
  if (!effects_json.empty()) WriteEffectsJson(effects_json, files, cg);
  if (!effects_dot.empty()) WriteEffectsDot(effects_dot, files, cg);
  if (!findings_json.empty()) WriteFindingsJson(findings_json);
  if (!bench_json.empty()) {
    const gnndm::Flags flags(argc, argv);
    WriteBenchJson(bench_json, flags, timer, cg.stats, files.size(),
                   Violations().size());
  }

  PrintFindings(stdout);
  if (stats) PrintStats(timer, cg, files);
  std::printf("gnndm_lint: %zu files scanned, %zu violation(s)\n",
              files.size(), Violations().size());
  return Violations().empty() ? 0 : 1;
}

}  // namespace
}  // namespace gnndm_lint

int main(int argc, char** argv) { return gnndm_lint::Run(argc, argv); }
