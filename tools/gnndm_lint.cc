// gnndm_lint — repo-specific static analysis, registered as a ctest so a
// violation fails the build. Usage:
//
//   $ gnndm_lint <repo_root>
//
// This is a *token-based* analyzer, not a line-regex scanner: every file
// is lexed (line/block comments, string/char literals, and raw strings
// handled correctly), so a banned construct mentioned in prose or inside
// a string literal never trips a rule, and a real one can never hide
// behind creative spacing.
//
// Suppressions. Any rule can be suppressed at a specific line with
//
//   // gnndm-lint: suppress(<rule-id>): <justification>
//
// placed on the offending line or the line above. The justification text
// is mandatory (an empty one is itself a violation, `bad-suppression`),
// and a suppression that matches no finding is reported as
// `unused-suppression` so escapes cannot rot in place. The pre-existing
// shorthand markers `serial-ok: <reason>`, `timer-ok: <reason>` and
// `batch-plane-ok: <reason>` are equivalent to suppressing their rule.
//
// Rule catalogue (see DESIGN.md §11 for the full rationale):
//   include-guard            .h files use GNNDM_<PATH>_H_ guards
//   raw-lock                 std::mutex & friends only inside the
//                            annotated wrappers (common/annotations.h)
//                            and the lock-order detector beneath them
//   raw-thread               std::thread in src/ only in the audited
//                            concurrency surfaces (ThreadPool, BatchSource)
//   batch-plane              batch production stays behind MakeBatchSource
//   assert-in-cc             assert() in non-test .cc — use GNNDM_[D]CHECK
//   deserialize-validate     binary parsers must Validate() what they read
//   raw-loop-kernel          kernel-shaped loops in src/tensor, src/nn go
//                            through ParallelFor
//   raw-timer                src/core|transfer|sampling time work via
//                            TRACE_SPAN, not ad-hoc WallTimers
//   unordered-iteration      no range-for / .begin() iteration over
//                            std::unordered_map/set in src/ — iteration
//                            order is implementation-defined and leaks
//                            straight into training output
//   raw-rng                  rand()/srand()/clock()/time()/random_device
//                            only inside src/common/rng.* — all other
//                            randomness flows from a seeded gnndm::Rng
//   thread-id-in-stats       std::this_thread::get_id() must not appear in
//                            src/: values derived from thread identity are
//                            schedule-dependent and poison stats/output
//   float-accum-in-parallel  no `scalar_float +=` inside a ParallelFor
//                            body: cross-chunk float accumulation order is
//                            nondeterministic; use a per-chunk partial and
//                            a deterministic reduction
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals
  kString,   // "..." and R"(...)" (text excludes quotes)
  kChar,     // '...'
  kComment,  // // and /* */ (text excludes the delimiters)
  kPunct,    // operators and punctuation, multi-char ops combined
};

struct Token {
  TokKind kind;
  std::string text;
  size_t line;  // 1-based line of the token's first character
};

/// Multi-character operators the rules care about, longest first.
const char* kMultiPunct[] = {"::", "+=", "-=", "->", "==", "!=", "<=",
                             ">=", "&&", "||", "<<", ">>", "++", "--"};

std::vector<Token> Lex(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0, line = 1;
  const size_t n = src.size();
  auto peek = [&](size_t off) -> char {
    return i + off < n ? src[i + off] : '\0';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.push_back({TokKind::kComment, src.substr(start, i - start), line});
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const size_t start_line = line;
      size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.push_back(
          {TokKind::kComment, src.substr(start, i - start), start_line});
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      size_t d0 = i + 2;
      size_t dp = d0;
      while (dp < n && src[dp] != '(') ++dp;
      const std::string delim = src.substr(d0, dp - d0);
      const std::string close = ")" + delim + "\"";
      const size_t start_line = line;
      size_t body = dp + 1;
      size_t end = src.find(close, body);
      if (end == std::string::npos) end = n;
      for (size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      out.push_back(
          {TokKind::kString, src.substr(body, end - body), start_line});
      i = std::min(n, end + close.size());
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t start = ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // unterminated; keep line count sane
        ++i;
      }
      out.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                     src.substr(start, i - start), line});
      if (i < n) ++i;  // closing quote
      continue;
    }
    // Identifier.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_')) {
        ++i;
      }
      out.push_back({TokKind::kIdent, src.substr(start, i - start), line});
      continue;
    }
    // Number (digits, hex, separators, exponents — precision is not
    // needed, only that the blob is one non-identifier token).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
            d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.push_back({TokKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation; combine the multi-char operators.
    bool matched = false;
    for (const char* op : kMultiPunct) {
      const size_t len = std::string(op).size();
      if (src.compare(i, len, op) == 0) {
        out.push_back({TokKind::kPunct, op, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// File model, findings, suppressions
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string rel;                  // path relative to repo root
  std::string contents;
  std::vector<std::string> lines;   // raw source lines
  std::vector<std::string> code;    // lines with comments/strings blanked
  std::vector<Token> tokens;        // comment tokens included
  bool is_header = false;
  bool is_source = false;

  bool InDir(const std::string& prefix) const {
    return rel.rfind(prefix, 0) == 0;
  }
};

struct Finding {
  std::string file;
  size_t line;  // 0 = whole-file
  std::string rule;
  std::string message;
};

struct Suppression {
  size_t line;
  std::string rule;
  std::string justification;
  bool legacy = false;  // serial-ok / timer-ok / batch-plane-ok shorthand
  bool used = false;
};

std::vector<Finding> g_violations;

void Report(const SourceFile& f, size_t line, const std::string& rule,
            const std::string& message) {
  g_violations.push_back({f.rel, line, rule, message});
}

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      "include-guard",      "raw-lock",
      "raw-thread",         "batch-plane",
      "assert-in-cc",       "deserialize-validate",
      "raw-loop-kernel",    "raw-timer",
      "unordered-iteration", "raw-rng",
      "thread-id-in-stats", "float-accum-in-parallel",
  };
  return kRules;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Parses every suppression comment in `f`. Malformed ones (unknown rule,
/// missing justification) are reported immediately.
std::vector<Suppression> CollectSuppressions(const SourceFile& f) {
  std::vector<Suppression> out;
  const std::map<std::string, std::string> kLegacy = {
      {"serial-ok", "raw-loop-kernel"},
      {"timer-ok", "raw-timer"},
      {"batch-plane-ok", "batch-plane"},
  };
  for (const Token& tok : f.tokens) {
    if (tok.kind != TokKind::kComment) continue;
    const std::string& text = tok.text;
    const size_t at = text.find("gnndm-lint:");
    if (at != std::string::npos) {
      const size_t sup = text.find("suppress", at);
      const size_t open = text.find('(', at);
      const size_t close = text.find(')', at);
      if (sup == std::string::npos || open == std::string::npos ||
          close == std::string::npos || close < open) {
        Report(f, tok.line, "bad-suppression",
               "malformed suppression; expected 'gnndm-lint: "
               "suppress(<rule-id>): <justification>'");
        continue;
      }
      const std::string rule = Trim(text.substr(open + 1, close - open - 1));
      if (KnownRules().count(rule) == 0) {
        Report(f, tok.line, "bad-suppression",
               "suppression names unknown rule '" + rule + "'");
        continue;
      }
      const size_t colon = text.find(':', close);
      const std::string just =
          colon == std::string::npos ? "" : Trim(text.substr(colon + 1));
      if (just.empty()) {
        Report(f, tok.line, "bad-suppression",
               "suppression of '" + rule +
                   "' carries no justification; write 'gnndm-lint: "
                   "suppress(" + rule + "): <why this is safe>'");
        continue;
      }
      out.push_back({tok.line, rule, just, /*legacy=*/false, false});
      continue;
    }
    for (const auto& [marker, rule] : kLegacy) {
      const size_t pos = text.find(marker);
      if (pos == std::string::npos) continue;
      // Require a word boundary so e.g. "not serial-ok" in prose with a
      // preceding identifier char doesn't count; markers start the
      // escape grammar with "<marker>:".
      if (pos > 0 && (std::isalnum(static_cast<unsigned char>(
                          text[pos - 1])) ||
                      text[pos - 1] == '-' || text[pos - 1] == '_')) {
        continue;
      }
      const size_t colon = pos + marker.size();
      if (colon >= text.size() || text[colon] != ':') continue;
      const std::string just = Trim(text.substr(colon + 1));
      if (just.empty()) {
        Report(f, tok.line, "bad-suppression",
               "'" + marker + "' marker carries no justification text");
        continue;
      }
      out.push_back({tok.line, rule, just, /*legacy=*/true, false});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Code tokens only (comments dropped), with an index back into them.
std::vector<const Token*> CodeTokens(const SourceFile& f) {
  std::vector<const Token*> out;
  out.reserve(f.tokens.size());
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::kComment) out.push_back(&t);
  }
  return out;
}

bool IsIdent(const Token* t, const char* text) {
  return t->kind == TokKind::kIdent && t->text == text;
}

bool IsPunct(const Token* t, const char* text) {
  return t->kind == TokKind::kPunct && t->text == text;
}

/// True if toks[i..] begins the qualified sequence std::<name>.
bool IsStdQualified(const std::vector<const Token*>& toks, size_t i,
                    const char* name) {
  return i + 2 < toks.size() && IsIdent(toks[i], "std") &&
         IsPunct(toks[i + 1], "::") && IsIdent(toks[i + 2], name);
}

/// Given toks[i] == "<", returns the index one past the matching ">".
/// The lexer emits ">>" as one token; it closes two levels.
size_t SkipTemplateArgs(const std::vector<const Token*>& toks, size_t i) {
  long depth = 0;
  for (; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "<")) ++depth;
    if (IsPunct(toks[i], ">")) --depth;
    if (IsPunct(toks[i], ">>")) depth -= 2;
    if (depth <= 0) return i + 1;
  }
  return i;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// GNNDM_<PATH>_H_ with the leading src/ stripped, matching the existing
/// style: src/common/status.h -> GNNDM_COMMON_STATUS_H_.
std::string ExpectedGuard(const std::string& rel) {
  std::string trimmed = StartsWith(rel, "src/") ? rel.substr(4) : rel;
  std::string guard = "GNNDM_";
  for (char c : trimmed) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludeGuard(const SourceFile& f) {
  if (!f.is_header) return;
  const std::string guard = ExpectedGuard(f.rel);
  bool has_ifndef = false, has_define = false;
  for (const auto& line : f.lines) {
    if (line.find("#ifndef " + guard) != std::string::npos) has_ifndef = true;
    if (line.find("#define " + guard) != std::string::npos) has_define = true;
  }
  if (!has_ifndef || !has_define) {
    Report(f, 0, "include-guard", "header must use include guard " + guard);
  }
}

// std::thread is allowed only where a worker thread is genuinely owned
// and its shared state is annotated; everything else goes through
// ThreadPool. Tests may spawn raw threads to provoke races.
const std::set<std::string> kThreadAllowlist = {
    "src/common/thread_pool.h", "src/common/thread_pool.cc",
    // hardware_concurrency() only; all shared state is annotated.
    "src/common/parallel_for.cc",
    "src/core/batch_source.h", "src/core/batch_source.cc",
};

void CheckConcurrencyPrimitives(const SourceFile& f,
                                const std::vector<const Token*>& toks) {
  // The wrapper itself, and the lock-order detector that sits beneath it
  // (which must use the raw std::mutex to avoid recursing into its own
  // hooks), are the only legal homes for the raw primitives.
  if (f.rel == "src/common/annotations.h" ||
      f.rel == "src/common/lock_order.h" ||
      f.rel == "src/common/lock_order.cc") {
    return;
  }
  static const char* kLockNames[] = {
      "mutex",       "condition_variable", "lock_guard",
      "unique_lock", "scoped_lock",        "shared_mutex",
      "recursive_mutex", "timed_mutex",    "condition_variable_any",
  };
  const bool thread_allowed =
      !f.InDir("src/") || kThreadAllowlist.count(f.rel) > 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "std")) continue;
    for (const char* name : kLockNames) {
      if (IsStdQualified(toks, i, name)) {
        Report(f, toks[i]->line, "raw-lock",
               "std::" + std::string(name) +
                   " bypasses thread-safety analysis and the lock-order "
                   "graph; use gnndm::Mutex / MutexLock / CondVar from "
                   "common/annotations.h");
      }
    }
    if (!thread_allowed && IsStdQualified(toks, i, "thread")) {
      Report(f, toks[i]->line, "raw-thread",
             "std::thread outside the audited concurrency surfaces; "
             "use ThreadPool or add the file to the lint allowlist "
             "after annotating its shared state");
    }
  }
}

/// Batch production is unified behind the BatchSource plane: src/ code
/// outside src/core/batch_source.{h,cc} must not name the producer-thread
/// implementation (AsyncBatchSource) or the retired AsyncBatchLoader.
void CheckBatchPlane(const SourceFile& f,
                     const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  if (f.rel == "src/core/batch_source.h" ||
      f.rel == "src/core/batch_source.cc") {
    return;
  }
  for (const Token* t : toks) {
    if (IsIdent(t, "AsyncBatchSource") || IsIdent(t, "AsyncBatchLoader")) {
      Report(f, t->line, "batch-plane",
             t->text +
                 " outside src/core/batch_source.{h,cc} fragments the "
                 "batch data plane; go through MakeBatchSource");
    }
  }
}

void CheckAssert(const SourceFile& f, const std::vector<const Token*>& toks) {
  if (!f.is_source || f.InDir("tests/")) return;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (IsIdent(toks[i], "assert") && IsPunct(toks[i + 1], "(")) {
      Report(f, toks[i]->line, "assert-in-cc",
             "assert() in non-test code vanishes under -DNDEBUG without "
             "trace; use GNNDM_DCHECK (debug) or GNNDM_CHECK (always)");
    }
  }
}

void CheckDeserializationValidates(const SourceFile& f,
                                   const std::vector<const Token*>& toks) {
  if (!f.is_source || !f.InDir("src/")) return;
  bool reads_binary = false, has_ifstream = false, has_validate = false;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (IsIdent(toks[i], "binary") && i >= 2 && IsPunct(toks[i - 1], "::") &&
        IsIdent(toks[i - 2], "ios")) {
      reads_binary = true;
    }
    if (toks[i]->kind == TokKind::kIdent &&
        toks[i]->text.find("ifstream") != std::string::npos) {
      has_ifstream = true;
    }
    // Any Validate* call counts (Validate, ValidateLoadedTensor, ...);
    // comments mentioning validation do not — tokens only.
    if (toks[i]->kind == TokKind::kIdent &&
        toks[i]->text.rfind("Validate", 0) == 0) {
      has_validate = true;
    }
  }
  if (reads_binary && has_ifstream && !has_validate) {
    Report(f, 0, "deserialize-validate",
           "binary deserializer must run a Validate() pass over the "
           "decoded structures before returning them");
  }
}

/// True if `line` is `for (` at an indent of at least `min_indent` spaces.
bool IsForAtIndent(const std::string& line, size_t min_indent) {
  size_t p = 0;
  while (p < line.size() && line[p] == ' ') ++p;
  return p >= min_indent && line.compare(p, 5, "for (") == 0;
}

/// Hot-kernel loops in src/tensor and src/nn must go through the
/// ParallelFor work-sharing layer. Heuristic: a function-top-level `for`
/// (exactly 2-space indent in this codebase) containing a nested loop is
/// kernel-shaped. Operates on comment/string-blanked `code` lines.
void CheckRawLoopKernels(const SourceFile& f) {
  if (!f.is_source ||
      (!f.InDir("src/tensor/") && !f.InDir("src/nn/"))) {
    return;
  }
  const std::vector<std::string>& code = f.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].rfind("  for (", 0) != 0 || code[i][2] != 'f') continue;
    long depth = 0;
    bool nested = false;
    for (size_t j = i; j < code.size(); ++j) {
      if (j > i && IsForAtIndent(code[j], 4)) nested = true;
      for (char c : code[j]) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (j > i && depth <= 0) break;
      if (j == i && depth == 0) break;  // braceless one-liner
    }
    if (nested) {
      Report(f, i + 1, "raw-loop-kernel",
             "nested loop in a tensor/nn kernel bypasses ParallelFor "
             "(common/parallel_for.h); parallelize it or mark it "
             "'// serial-ok: <reason>'");
    }
  }
}

/// The pipeline-stage directories must not time work outside the span
/// tracer: a raw WallTimer there produces numbers telemetry (and the
/// EpochStats reconciliation test) cannot see.
void CheckTimerUse(const SourceFile& f,
                   const std::vector<const Token*>& toks) {
  if (!f.is_source ||
      (!f.InDir("src/core/") && !f.InDir("src/transfer/") &&
       !f.InDir("src/sampling/"))) {
    return;
  }
  for (const Token* t : toks) {
    if (IsIdent(t, "WallTimer")) {
      Report(f, t->line, "raw-timer",
             "direct WallTimer in a pipeline-stage directory escapes the "
             "telemetry breakdown; use TRACE_SPAN(\"subsystem.name\") or "
             "mark the line '// timer-ok: <reason>'");
    }
  }
}

/// Names declared (anywhere in `f`) with an unordered container type,
/// including via std::vector<std::unordered_*<...>>. Token heuristic: an
/// `unordered_map`/`unordered_set` identifier, skip its template args,
/// skip trailing type syntax (`>`, `>>`, `&`, `*`, `const`), and take the
/// next identifier as the declared name. Over-approximates (a function
/// returning an unordered container is collected too) — which is correct
/// here, because iterating such a return value is just as order-unstable.
std::set<std::string> UnorderedNames(const std::vector<const Token*>& toks) {
  std::set<std::string> names;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "unordered_map") &&
        !IsIdent(toks[i], "unordered_set")) {
      continue;
    }
    size_t j = i + 1;
    if (j < toks.size() && IsPunct(toks[j], "<")) {
      j = SkipTemplateArgs(toks, j);
    }
    while (j < toks.size() &&
           (IsPunct(toks[j], ">") || IsPunct(toks[j], ">>") ||
            IsPunct(toks[j], "&") || IsPunct(toks[j], "*") ||
            IsIdent(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j]->kind == TokKind::kIdent) {
      names.insert(toks[j]->text);
    }
  }
  return names;
}

/// Determinism rule: iteration over std::unordered_map/unordered_set in
/// src/ — the iteration order is implementation-defined (libstdc++,
/// libc++, and different bucket counts all disagree), so any traversal
/// feeding computation or output is a reproducibility bug waiting for a
/// toolchain bump. Flags (a) range-for statements whose range expression
/// names an unordered container, and (b) explicit .begin()/.end() family
/// calls on one.
void CheckUnorderedIteration(const SourceFile& f,
                             const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  const std::set<std::string> names = UnorderedNames(toks);
  if (names.empty()) return;

  for (size_t i = 0; i < toks.size(); ++i) {
    // (a) for ( ... : <expr naming an unordered var> )
    if (IsIdent(toks[i], "for") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      long depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")") && --depth == 0) {
          close = j;
          break;
        }
        if (depth == 1 && colon == 0 && IsPunct(toks[j], ":")) colon = j;
      }
      if (colon != 0 && close != 0) {
        for (size_t j = colon + 1; j < close; ++j) {
          if (toks[j]->kind == TokKind::kIdent &&
              names.count(toks[j]->text) > 0) {
            Report(f, toks[i]->line, "unordered-iteration",
                   "range-for over unordered container '" + toks[j]->text +
                       "': iteration order is implementation-defined and "
                       "breaks byte-identical output; sort the keys or "
                       "keep a parallel insertion-order vector");
            break;
          }
        }
      }
    }
    // (b) <unordered var> [...].begin() / .cbegin() — the start of an
    // explicit iterator traversal. A bare .end() is not flagged: it is
    // almost always the `find() != end()` membership idiom. A member
    // access `other.name.begin()` is skipped too — the collected names
    // are file-local declarations, not members of foreign structs.
    if (toks[i]->kind == TokKind::kIdent && names.count(toks[i]->text) > 0 &&
        !(i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")))) {
      size_t j = i + 1;
      while (j + 1 < toks.size() && IsPunct(toks[j], "[")) {
        long depth = 0;
        for (; j < toks.size(); ++j) {
          if (IsPunct(toks[j], "[")) ++depth;
          if (IsPunct(toks[j], "]") && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      if (j + 1 < toks.size() && IsPunct(toks[j], ".") &&
          (IsIdent(toks[j + 1], "begin") ||
           IsIdent(toks[j + 1], "cbegin"))) {
        Report(f, toks[i]->line, "unordered-iteration",
               "iterator traversal of unordered container '" +
                   toks[i]->text +
                   "' is order-unstable; sort the keys first");
      }
    }
  }
}

/// Determinism rule: every random draw flows from a seeded gnndm::Rng.
/// rand()/srand()/clock()/time() and std::random_device are either
/// schedule-, wall-clock-, or entropy-dependent; a single call anywhere
/// on a training path silently breaks run-to-run reproducibility.
void CheckRawRng(const SourceFile& f, const std::vector<const Token*>& toks) {
  if (!f.InDir("src/") && !f.InDir("tools/") && !f.InDir("bench/")) return;
  if (f.rel == "src/common/rng.h" || f.rel == "src/common/rng.cc") return;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token* t = toks[i];
    if (t->kind != TokKind::kIdent) continue;
    if (IsIdent(t, "random_device")) {
      Report(f, t->line, "raw-rng",
             "std::random_device draws nondeterministic entropy; seed a "
             "gnndm::Rng (common/rng.h) instead");
      continue;
    }
    const bool call_like =
        i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
    if (!call_like) continue;
    const bool member = i > 0 && (IsPunct(toks[i - 1], ".") ||
                                  IsPunct(toks[i - 1], "->"));
    if (member) continue;  // foo.time() is not ::time()
    if (IsIdent(t, "rand") || IsIdent(t, "srand") || IsIdent(t, "time") ||
        IsIdent(t, "clock")) {
      Report(f, t->line, "raw-rng",
             t->text +
                 "() is wall-clock/entropy-dependent; all randomness and "
                 "timing must flow from gnndm::Rng seeds or the telemetry "
                 "clocks");
    }
  }
}

/// Determinism rule: values derived from std::this_thread::get_id() are
/// pure scheduling artifacts. The telemetry layer identifies threads by
/// registration order (stable per run shape); nothing else may key state
/// or stats off a thread id.
void CheckThreadIdInStats(const SourceFile& f,
                          const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (IsIdent(toks[i], "get_id") && i >= 2 &&
        IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "this_thread")) {
      Report(f, toks[i]->line, "thread-id-in-stats",
             "std::this_thread::get_id() is schedule-dependent; key "
             "per-thread state off registration order (see "
             "telemetry::Tracer) so stats stay deterministic");
    }
  }
}

/// Names declared as scalar float/double variables: `double x =`,
/// `float y;`, `double z{...}`. Parameters and members are excluded by
/// requiring an initializer or plain `;` so the rule stays precise.
std::set<std::string> ScalarFloatNames(const std::vector<const Token*>& toks,
                                       size_t begin, size_t end) {
  std::set<std::string> names;
  if (end > toks.size()) end = toks.size();
  for (size_t i = begin; i + 2 < end; ++i) {
    if (!IsIdent(toks[i], "double") && !IsIdent(toks[i], "float")) continue;
    const Token* name = toks[i + 1];
    const Token* next = toks[i + 2];
    if (name->kind != TokKind::kIdent) continue;
    if (IsPunct(next, "=") || IsPunct(next, ";") || IsPunct(next, "{")) {
      names.insert(name->text);
    }
  }
  return names;
}

/// Determinism rule: accumulating into a shared scalar float inside a
/// ParallelFor body sums chunks in completion order — a different order
/// (and different rounding) every run, and usually a data race besides.
/// Element-wise updates (`out[i] += x`, `dst.row(r)[c] += v`) are fine:
/// each element is owned by exactly one chunk. Deterministic escape: keep
/// per-chunk partials and reduce in index order, then suppress with
/// `gnndm-lint: suppress(float-accum-in-parallel): <why ordered>`.
void CheckFloatAccumInParallel(const SourceFile& f,
                               const std::vector<const Token*>& toks) {
  if (!f.InDir("src/")) return;
  const std::set<std::string> floats =
      ScalarFloatNames(toks, 0, toks.size());
  if (floats.empty()) return;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "ParallelFor") &&
        !IsIdent(toks[i], "ParallelFor2D") &&
        !IsIdent(toks[i], "ParallelForShards")) {
      continue;
    }
    if (!IsPunct(toks[i + 1], "(")) continue;
    long depth = 0;
    size_t end = toks.size();
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (IsPunct(toks[j], "(")) ++depth;
      if (IsPunct(toks[j], ")") && --depth == 0) {
        end = j;
        break;
      }
    }
    // A float declared *inside* the call extent (a lambda-body local) is
    // chunk-private: each invocation owns its own copy, so accumulating
    // into it is a deterministic per-chunk partial, not a shared sum.
    const std::set<std::string> extent_locals =
        ScalarFloatNames(toks, i + 2, end);
    for (size_t j = i + 2; j < end; ++j) {
      if (!IsPunct(toks[j], "+=") && !IsPunct(toks[j], "-=")) continue;
      const Token* lhs = toks[j - 1];
      if (lhs->kind != TokKind::kIdent || floats.count(lhs->text) == 0 ||
          extent_locals.count(lhs->text) > 0) {
        continue;
      }
      // `x[k] += v` and `p->x += v` are element/field updates, not shared
      // scalar accumulation; require the identifier to stand alone.
      if (j >= 2 && (IsPunct(toks[j - 2], "]") || IsPunct(toks[j - 2], ".") ||
                     IsPunct(toks[j - 2], "->"))) {
        continue;
      }
      Report(f, lhs->line, "float-accum-in-parallel",
             "accumulation into shared float '" + lhs->text +
                 "' inside a ParallelFor body sums in completion order "
                 "(nondeterministic rounding, likely racy); keep "
                 "per-chunk partials and reduce in index order");
    }
    i = end;
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Source lines with comments and string/char literal bodies blanked,
/// reconstructed from the token stream (used by line-shape heuristics).
std::vector<std::string> BlankedLines(const SourceFile& f) {
  std::vector<std::string> code = f.lines;
  // Blank everything, then re-project non-comment/non-string tokens that
  // fit on a single line. Multi-line tokens (block comments, raw
  // strings) simply stay blank — exactly what the heuristics want.
  for (auto& line : code) line.assign(line.size(), ' ');
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kComment || t.kind == TokKind::kString ||
        t.kind == TokKind::kChar) {
      continue;
    }
    if (t.line == 0 || t.line > f.lines.size()) continue;
    const std::string& orig = f.lines[t.line - 1];
    const size_t at = orig.find(t.text);
    if (at != std::string::npos && at + t.text.size() <= code[t.line - 1].size()) {
      code[t.line - 1].replace(at, t.text.size(), t.text);
    }
  }
  return code;
}

void LintFile(const fs::path& path, const fs::path& root) {
  SourceFile f;
  f.rel = fs::relative(path, root).generic_string();
  // The linter's own sources discuss the suppression grammar and rule
  // tokens in doc comments; it does not lint itself.
  if (f.rel == "tools/gnndm_lint.cc") return;

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  f.contents = buffer.str();
  {
    std::string line;
    std::istringstream stream(f.contents);
    while (std::getline(stream, line)) f.lines.push_back(line);
  }
  f.tokens = Lex(f.contents);
  f.code = BlankedLines(f);
  f.is_header = path.extension() == ".h";
  f.is_source = path.extension() == ".cc";

  const std::vector<const Token*> toks = CodeTokens(f);
  std::vector<Suppression> suppressions = CollectSuppressions(f);

  const size_t before = g_violations.size();
  CheckIncludeGuard(f);
  CheckConcurrencyPrimitives(f, toks);
  CheckBatchPlane(f, toks);
  CheckAssert(f, toks);
  CheckDeserializationValidates(f, toks);
  CheckRawLoopKernels(f);
  CheckTimerUse(f, toks);
  CheckUnorderedIteration(f, toks);
  CheckRawRng(f, toks);
  CheckThreadIdInStats(f, toks);
  CheckFloatAccumInParallel(f, toks);

  // Apply suppressions: a finding is covered by a matching-rule
  // suppression on its line or the line above.
  std::vector<Finding> kept(g_violations.begin(),
                            g_violations.begin() +
                                static_cast<long>(before));
  for (size_t i = before; i < g_violations.size(); ++i) {
    Finding& v = g_violations[i];
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.rule == v.rule &&
          (s.line == v.line || s.line + 1 == v.line)) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(v);
  }
  g_violations = std::move(kept);

  // A suppression nothing needed is dead weight — or a typo'd line that
  // is silently letting the real finding through. Legacy markers are
  // held to the same standard.
  for (const Suppression& s : suppressions) {
    if (!s.used) {
      Report(f, s.line, "unused-suppression",
             "suppression of '" + s.rule +
                 "' matches no finding on this or the next line; delete "
                 "it or move it to the offending line");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gnndm_lint <repo_root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  size_t files = 0;
  for (const char* dir : {"src", "tests", "bench", "tools"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) {
      std::fprintf(stderr, "gnndm_lint: missing directory %s\n",
                   base.string().c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".h" && ext != ".cc") continue;
      LintFile(entry.path(), root);
      ++files;
    }
  }
  for (const auto& v : g_violations) {
    if (v.line == 0) {
      std::fprintf(stderr, "%s: [%s] %s\n", v.file.c_str(), v.rule.c_str(),
                   v.message.c_str());
    } else {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                   v.rule.c_str(), v.message.c_str());
    }
  }
  std::printf("gnndm_lint: %zu files scanned, %zu violation(s)\n", files,
              g_violations.size());
  return g_violations.empty() ? 0 : 1;
}
