# Sanitizer presets for the correctness-tooling layer.
#
#   cmake -B build -S . -DGNNDM_SANITIZE=address            # ASan + LSan
#   cmake -B build -S . -DGNNDM_SANITIZE=undefined          # UBSan
#   cmake -B build -S . -DGNNDM_SANITIZE=address+undefined  # CI combo
#   cmake -B build -S . -DGNNDM_SANITIZE=thread             # TSan
#
# The flags flow into every target (libraries, tests, benches, tools)
# through add_compile_options/add_link_options in the top-level lists
# file, and the full ctest suite is expected to run sanitizer-clean.
# Sanitizer builds also define GNNDM_ENABLE_DCHECKS so the debug
# invariant validators (CsrGraph/PartitionResult/SampledSubgraph
# ::Validate) run even when the build type would otherwise strip them.

set(GNNDM_SANITIZE "" CACHE STRING
    "Sanitizer preset: empty, address, undefined, address+undefined, thread")
set_property(CACHE GNNDM_SANITIZE PROPERTY STRINGS
             "" "address" "undefined" "address+undefined" "thread")

function(gnndm_apply_sanitizer)
  if(GNNDM_SANITIZE STREQUAL "")
    return()
  endif()

  if(GNNDM_SANITIZE STREQUAL "address")
    set(_flags -fsanitize=address -fno-omit-frame-pointer)
  elseif(GNNDM_SANITIZE STREQUAL "undefined")
    set(_flags -fsanitize=undefined -fno-sanitize-recover=all
        -fno-omit-frame-pointer)
  elseif(GNNDM_SANITIZE STREQUAL "address+undefined")
    # ASan and UBSan compose; TSan does not combine with either.
    set(_flags -fsanitize=address,undefined -fno-sanitize-recover=all
        -fno-omit-frame-pointer)
  elseif(GNNDM_SANITIZE STREQUAL "thread")
    set(_flags -fsanitize=thread -fno-omit-frame-pointer)
  else()
    message(FATAL_ERROR
            "GNNDM_SANITIZE must be empty, address, undefined, "
            "address+undefined, or thread (got '${GNNDM_SANITIZE}')")
  endif()

  add_compile_options(${_flags} -g -O1)
  add_link_options(${_flags})
  add_compile_definitions(GNNDM_ENABLE_DCHECKS)
  message(STATUS "gnndm: sanitizer preset '${GNNDM_SANITIZE}' enabled "
                 "(validators on via GNNDM_ENABLE_DCHECKS)")
endfunction()
